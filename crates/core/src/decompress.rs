//! Sequence-preserving decompression (paper §V).
//!
//! Traverses the CTT in pre-order, interpreting each vertex's recorded data:
//! loop vertices replay their children once per recorded iteration, branch
//! vertices replay their children when the recorded taken-index matches the
//! parent's current visit index, and leaves emit the next occurrence of their
//! merged records. The visit counters here mirror the compressor's exactly,
//! so for programs without recursion the emitted `(gid, op, params)` sequence
//! equals the original event-for-event — the paper's headline
//! sequence-preservation property, tested exhaustively in
//! `tests/roundtrip.rs`.
//!
//! For recursive programs the pseudo-loop conversion is approximate (the
//! paper's own wording): the emitted sequence preserves the event *multiset*
//! per pseudo-loop iteration, and is exact when recursive calls are in tail
//! position within their branch arm.

use crate::ctt::{Ctt, VertexData};
use crate::intseq::IntSeqReader;
use cypress_cst::tree::{Cst, VertexKind};
use cypress_trace::event::{MpiOp, MpiParams, MpiRecord};

/// One decompressed operation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOp {
    pub gid: u32,
    pub op: MpiOp,
    pub params: MpiParams,
    /// Mean duration of the merged record this occurrence came from (ns).
    pub mean_dur: u64,
    /// Mean preceding computation gap (ns).
    pub mean_gap: u64,
}

/// Decompress one process's CTT back into its operation sequence.
pub fn decompress(cst: &Cst, ctt: &Ctt) -> Vec<ReplayOp> {
    let mut out = Vec::new();
    decompress_into(cst, ctt, |op| out.push(op));
    out
}

/// Streaming decompression: replay the CTT's operation sequence into `sink`
/// without materializing a `Vec`. This is the partial-expansion primitive of
/// the compressed-domain query engine — analyses that cannot be evaluated
/// symbolically fold each operation as it is produced, so the expansion
/// stays allocation-free even for O(events)-sized replays.
pub fn decompress_into(cst: &Cst, ctt: &Ctt, sink: impl FnMut(ReplayOp)) {
    assert_eq!(
        cst.len(),
        ctt.data.len(),
        "CTT must have the same shape as the CST"
    );
    let mut d = Decomp {
        cst,
        ctt,
        rank: ctt.rank as i64,
        loops: ctt
            .data
            .iter()
            .map(|vd| match vd {
                VertexData::Loop { counts } => Some(counts.reader()),
                _ => None,
            })
            .collect(),
        branches: ctt
            .data
            .iter()
            .map(|vd| match vd {
                VertexData::Branch { taken } => Some(taken.reader()),
                _ => None,
            })
            .collect(),
        leaves: ctt
            .data
            .iter()
            .map(|vd| match vd {
                VertexData::Leaf { .. } => Some(LeafCursor { rec: 0, used: 0 }),
                _ => None,
            })
            .collect(),
        visits: vec![0; cst.len()],
        sink,
    };
    d.visits[0] = 1;
    d.visit_children(0);
}

/// Convert a replayed op sequence into `MpiRecord`s with reconstructed
/// (approximate) timestamps: each op starts after its mean gap and lasts its
/// mean duration.
pub fn replay_to_records(ops: &[ReplayOp]) -> Vec<MpiRecord> {
    let mut t = 0u64;
    ops.iter()
        .map(|o| {
            t += o.mean_gap;
            let rec = MpiRecord {
                gid: o.gid,
                op: o.op,
                params: o.params.clone(),
                t_start: t,
                dur: o.mean_dur,
            };
            t += o.mean_dur;
            rec
        })
        .collect()
}

struct LeafCursor {
    rec: usize,
    used: u64,
}

struct Decomp<'a, F> {
    cst: &'a Cst,
    ctt: &'a Ctt,
    rank: i64,
    loops: Vec<Option<IntSeqReader<'a>>>,
    branches: Vec<Option<IntSeqReader<'a>>>,
    leaves: Vec<Option<LeafCursor>>,
    visits: Vec<u64>,
    sink: F,
}

impl<F: FnMut(ReplayOp)> Decomp<'_, F> {
    fn visit_children(&mut self, v: usize) {
        let children = self.cst.vertex(v).children.clone();
        for c in children {
            self.visit(c);
        }
    }

    fn visit(&mut self, v: usize) {
        match &self.cst.vertex(v).kind {
            VertexKind::Root | VertexKind::UserCall { .. } => {
                unreachable!("root/user-call vertices are never visited as children")
            }
            VertexKind::Loop { .. } => {
                let n = self.loops[v]
                    .as_mut()
                    .and_then(|r| r.next())
                    .unwrap_or(0)
                    .max(0) as u64;
                for _ in 0..n {
                    self.visits[v] += 1;
                    self.visit_children(v);
                }
            }
            VertexKind::Branch { .. } => {
                let parent = self.cst.vertex(v).parent.expect("branches have parents");
                let parent_idx = self.visits[parent].saturating_sub(1) as i64;
                let taken = self.branches[v]
                    .as_mut()
                    .map(|r| {
                        if r.peek() == Some(parent_idx) {
                            r.next();
                            true
                        } else {
                            false
                        }
                    })
                    .unwrap_or(false);
                if taken {
                    self.visits[v] += 1;
                    self.visit_children(v);
                }
            }
            VertexKind::Mpi { .. } => {
                let VertexData::Leaf { records } = &self.ctt.data[v] else {
                    return;
                };
                let cur = self.leaves[v].as_mut().expect("leaf cursor exists");
                // Skip exhausted records.
                while cur.rec < records.len() && cur.used >= records[cur.rec].count {
                    cur.rec += 1;
                    cur.used = 0;
                }
                if cur.rec >= records.len() {
                    // Stream exhausted: the vertex was visited fewer times
                    // than the traversal implies (recursion approximation);
                    // emit nothing.
                    return;
                }
                let r = &records[cur.rec];
                cur.used += 1;
                (self.sink)(ReplayOp {
                    gid: v as u32,
                    op: r.params.op,
                    params: r.params.decode(self.rank),
                    mean_dur: r.time.mean().round() as u64,
                    mean_gap: r.gap.mean().round() as u64,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress_trace, CompressConfig};
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};
    use cypress_trace::raw::RawTrace;

    /// Round-trip helper: compress + decompress, compare (gid, op, params).
    fn assert_round_trip(src: &str, nprocs: u32) {
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        for t in &traces {
            assert_rank_round_trip(&info.cst, t);
        }
    }

    fn assert_rank_round_trip(cst: &cypress_cst::Cst, t: &RawTrace) {
        let ctt = compress_trace(cst, t, &CompressConfig::default());
        let got = decompress(cst, &ctt);
        let want: Vec<(u32, MpiOp, MpiParams)> = t
            .mpi_records()
            .map(|r| (r.gid, r.op, r.params.clone()))
            .collect();
        let got_tuples: Vec<(u32, MpiOp, MpiParams)> = got
            .iter()
            .map(|o| (o.gid, o.op, o.params.clone()))
            .collect();
        assert_eq!(got_tuples, want, "round trip failed for rank {}", t.rank);
    }

    #[test]
    fn round_trip_jacobi() {
        assert_round_trip(
            r#"fn main() {
                let r = rank(); let s = size();
                for k in 0..10 {
                    if r < s - 1 { send(r + 1, 1024, 0); }
                    if r > 0 { recv(r - 1, 1024, 0); }
                    if r > 0 { send(r - 1, 1024, 1); }
                    if r < s - 1 { recv(r + 1, 1024, 1); }
                }
            }"#,
            5,
        );
    }

    #[test]
    fn round_trip_nested_varying_loops() {
        assert_round_trip(
            r#"fn main() {
                for i in 0..8 {
                    bcast(0, 64);
                    for j in 0..i {
                        let a = isend((rank() + 1) % size(), 8 * (j + 1), j);
                        let b = irecv(any_source(), 8 * (j + 1), j);
                        waitall(a, b);
                    }
                }
            }"#,
            3,
        );
    }

    #[test]
    fn round_trip_alternating_branches() {
        assert_round_trip(
            r#"fn main() {
                for i in 0..17 {
                    if i % 3 == 0 { barrier(); }
                    else if i % 3 == 1 { allreduce(4); }
                    else { alltoall(16); }
                }
            }"#,
            2,
        );
    }

    #[test]
    fn round_trip_functions_and_paths() {
        assert_round_trip(
            r#"
            fn halo(d) {
                if rank() + d < size() && rank() + d >= 0 { send(rank() + d, 256, 7); }
                if rank() - d < size() && rank() - d >= 0 { recv(rank() - d, 256, 7); }
            }
            fn main() {
                for s in 0..6 { halo(1); halo(0 - 1); }
                reduce(0, 8);
            }
            "#,
            4,
        );
    }

    #[test]
    fn round_trip_zero_iteration_loops() {
        assert_round_trip(
            "fn main() { for i in 0..5 { for j in 3..i { barrier(); } bcast(0, 8); } }",
            1,
        );
    }

    #[test]
    fn round_trip_rank_dependent_counts() {
        assert_round_trip(
            r#"fn main() {
                for i in 0..rank() + 1 {
                    send((rank() + 1) % size(), 32, i);
                }
                for i in 0..rank() + 1 {
                    recv(any_source(), 32, i);
                }
            }"#,
            4,
        );
    }

    #[test]
    fn tail_recursion_round_trips_exactly() {
        assert_round_trip(
            r#"
            fn countdown(n) {
                if n > 0 {
                    bcast(0, 16);
                    countdown(n - 1);
                }
            }
            fn main() { countdown(9); }
            "#,
            1,
        );
    }

    #[test]
    fn non_tail_recursion_preserves_multiset() {
        let src = r#"
            fn updown(n) {
                if n > 0 {
                    bcast(0, 16);
                    updown(n - 1);
                    reduce(0, 16);
                }
            }
            fn main() { updown(5); }
        "#;
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, 1, &InterpConfig::default()).unwrap();
        let ctt = compress_trace(&info.cst, &traces[0], &CompressConfig::default());
        let got = decompress(&info.cst, &ctt);
        // Multiset of (op) preserved: 5 bcasts + 5 reduces.
        assert_eq!(got.len(), 10);
        assert_eq!(got.iter().filter(|o| o.op == MpiOp::Bcast).count(), 5);
        assert_eq!(got.iter().filter(|o| o.op == MpiOp::Reduce).count(), 5);
    }

    #[test]
    fn replay_records_have_monotone_timestamps() {
        let src = "fn main() { for i in 0..4 { compute(100); bcast(0, 64); } }";
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, 1, &InterpConfig::default()).unwrap();
        let ctt = compress_trace(&info.cst, &traces[0], &CompressConfig::default());
        let recs = replay_to_records(&decompress(&info.cst, &ctt));
        assert_eq!(recs.len(), 4);
        for w in recs.windows(2) {
            assert!(w[1].t_start >= w[0].t_start + w[0].dur);
        }
        // Compute gaps survived: ops do not start at 0.
        assert!(recs[0].t_start >= 100);
    }
}
