//! The submitting side: connect/send retry with exponential backoff,
//! per-request timeouts, and a drain-on-finish handshake.
//!
//! Streaming submission is **replayable by construction**: the caller
//! passes a producer closure that regenerates the rank's event stream into
//! an [`EventSink`], and every retry re-runs it from the start. That keeps
//! the client memory-bounded (nothing is buffered beyond one chunk) while
//! still surviving a mid-stream disconnect — the collector discards the
//! partial session, and the retried attempt re-streams everything. Event
//! sources in this repo (the deterministic interpreter, recorded raw
//! traces) replay exactly, so a retry submits identical bytes.

use crate::proto::{encode_frame_into, read_frame, write_frame, Frame, SubmitMode, PROTO_VERSION};
use crate::transport::{Addr, Stream};
use crate::NetError;
use cypress_core::Ctt;
use cypress_deflate::{deflate, Level};
use cypress_trace::codec::Codec;
use cypress_trace::event::{Event, EventSink};
use std::io::Write;
use std::time::Duration;

/// Client knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Total connect+submit attempts before giving up.
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Per-request (read/write/connect) timeout.
    pub io_timeout: Duration,
    /// Events per `Events` frame in streaming mode.
    pub chunk_events: usize,
    /// DEFLATE level for ctt-mode submissions. Only used when the
    /// collector negotiates protocol ≥ 2, and only kept when compression
    /// actually shrinks the payload; `None` always sends raw `RankCtt`.
    pub ctt_level: Option<Level>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            attempts: 5,
            backoff: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            chunk_events: 512,
            ctt_level: Some(Level::Default),
        }
    }
}

/// What a successful submission did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The collector already had this rank (nothing was sent) — a retried
    /// client discovering its previous attempt actually landed.
    pub already_done: bool,
    /// Events streamed in the successful attempt (0 in ctt mode or when
    /// `already_done`).
    pub events_sent: u64,
    /// Attempts used, including the successful one.
    pub attempts: u32,
    /// Ranks the collector had merged when it acknowledged this one.
    pub ranks_done: u32,
}

/// Flush the pipelined wire buffer to the socket once it holds this much.
const WIRE_FLUSH: usize = 64 * 1024;

/// Buffers events into `Events` frames, and frames into a coalesced wire
/// buffer: the protocol needs no per-frame ack, so many chunks pipeline
/// into one large socket write instead of a syscall per chunk. A send
/// failure is latched: later events are dropped cheaply, and the producer
/// finishes its (wasted) replay so the attempt can report the error and
/// retry.
struct ChunkSink<'a> {
    stream: &'a mut Stream,
    buf: Vec<Event>,
    wire: Vec<u8>,
    chunk: usize,
    sent: u64,
    err: Option<NetError>,
}

impl ChunkSink<'_> {
    /// Encode the pending chunk into the wire buffer (no socket write
    /// unless the buffer is full).
    fn flush_events(&mut self) {
        if self.err.is_some() || self.buf.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.buf);
        let n = events.len() as u64;
        let frame = Frame::Events { events };
        encode_frame_into(&frame, &mut self.wire);
        self.sent += n;
        // Recover the chunk allocation for the next batch.
        let Frame::Events { mut events } = frame else {
            unreachable!()
        };
        events.clear();
        self.buf = events;
        if self.wire.len() >= WIRE_FLUSH {
            self.flush_wire();
        }
    }

    fn flush_wire(&mut self) {
        if self.err.is_some() || self.wire.is_empty() {
            return;
        }
        let res = self
            .stream
            .write_all(&self.wire)
            .and_then(|()| self.stream.flush());
        if let Err(e) = res {
            self.err = Some(NetError::Io(e));
        }
        self.wire.clear();
    }
}

impl EventSink for ChunkSink<'_> {
    fn event(&mut self, ev: Event) {
        if self.err.is_some() {
            return;
        }
        self.buf.push(ev);
        if self.buf.len() >= self.chunk {
            self.flush_events();
        }
    }
}

/// Returns `(negotiated_version, already_done)`.
fn hello_exchange(
    stream: &mut Stream,
    rank: u32,
    nprocs: u32,
    mode: SubmitMode,
    cst_text: &str,
) -> Result<(u8, bool), NetError> {
    write_frame(
        stream,
        &Frame::Hello {
            version: PROTO_VERSION,
            rank,
            nprocs,
            mode,
            cst_text: cst_text.to_string(),
        },
    )?;
    match read_frame(stream)? {
        Frame::HelloAck {
            version,
            already_done,
        } => Ok((version, already_done)),
        Frame::Error { code, message } => Err(NetError::Remote { code, message }),
        f => Err(NetError::Protocol(format!(
            "expected HelloAck, got {}",
            f.name()
        ))),
    }
}

fn read_fin_ack(stream: &mut Stream) -> Result<u32, NetError> {
    match read_frame(stream)? {
        Frame::FinAck { ranks_done } => Ok(ranks_done),
        Frame::Error { code, message } => Err(NetError::Remote { code, message }),
        f => Err(NetError::Protocol(format!(
            "expected FinAck, got {}",
            f.name()
        ))),
    }
}

/// One retry loop shared by both submit modes: run `attempt` until it
/// succeeds, the error is non-retryable, or attempts are exhausted.
fn with_retry<T>(
    cfg: &ClientConfig,
    mut attempt: impl FnMut(u32) -> Result<T, NetError>,
) -> Result<T, NetError> {
    let attempts = cfg.attempts.max(1);
    let mut backoff = cfg.backoff;
    let mut last = String::new();
    for i in 1..=attempts {
        match attempt(i) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && i < attempts => {
                last = e.to_string();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(cfg.backoff_max);
            }
            Err(e) if e.is_retryable() => {
                return Err(NetError::RetriesExhausted {
                    attempts,
                    last: e.to_string(),
                })
            }
            Err(e) => return Err(e),
        }
    }
    // Unreachable: the loop always returns; keep the compiler satisfied.
    Err(NetError::RetriesExhausted { attempts, last })
}

/// Stream one rank's events to a collector, retrying whole attempts with
/// exponential backoff on transport failures.
///
/// `produce` must replay the rank's full event stream into the sink and
/// return the rank's application time (ns); it runs once per attempt.
/// Returning `Err` aborts without retry (a deterministic producer that
/// failed once will fail again).
pub fn submit_stream(
    addr: &Addr,
    cfg: &ClientConfig,
    rank: u32,
    nprocs: u32,
    cst_text: &str,
    mut produce: impl FnMut(&mut dyn EventSink) -> Result<u64, String>,
) -> Result<SubmitOutcome, NetError> {
    with_retry(cfg, |attempt| {
        let mut stream = Stream::connect(addr, cfg.io_timeout)?;
        cypress_obs::trace_instant("net", "connect", rank as u64);
        stream.set_io_timeout(cfg.io_timeout)?;
        if hello_exchange(&mut stream, rank, nprocs, SubmitMode::Stream, cst_text)?.1 {
            stream.shutdown();
            return Ok(SubmitOutcome {
                already_done: true,
                events_sent: 0,
                attempts: attempt,
                ranks_done: 0,
            });
        }
        let sent = {
            let mut sink = ChunkSink {
                stream: &mut stream,
                buf: Vec::new(),
                wire: Vec::new(),
                chunk: cfg.chunk_events.max(1),
                sent: 0,
                err: None,
            };
            let app_time = produce(&mut sink).map_err(NetError::Source)?;
            sink.flush_events();
            // The Finish rides the same write as the stream's tail — the
            // whole submission is one pipelined burst with a single
            // round-trip at the end.
            encode_frame_into(
                &Frame::Finish {
                    app_time,
                    event_count: sink.sent,
                },
                &mut sink.wire,
            );
            sink.flush_wire();
            if let Some(e) = sink.err.take() {
                return Err(e);
            }
            sink.sent
        };
        let ranks_done = read_fin_ack(&mut stream)?;
        stream.shutdown();
        Ok(SubmitOutcome {
            already_done: false,
            events_sent: sent,
            attempts: attempt,
            ranks_done,
        })
    })
}

/// Submit a locally-compressed CTT (the paper's merge-at-finalize artifact)
/// instead of raw events. Same retry/backoff/drain behavior.
pub fn submit_ctt(
    addr: &Addr,
    cfg: &ClientConfig,
    ctt: &Ctt,
    cst_text: &str,
) -> Result<SubmitOutcome, NetError> {
    let bytes = ctt.to_bytes();
    // Compress once up front; retried attempts reuse it. Kept only when it
    // actually wins, and only sent to collectors that negotiated v2.
    let compressed = cfg
        .ctt_level
        .map(|lvl| deflate(&bytes, lvl))
        .filter(|z| z.len() < bytes.len());
    with_retry(cfg, |attempt| {
        let mut stream = Stream::connect(addr, cfg.io_timeout)?;
        cypress_obs::trace_instant("net", "connect", ctt.rank as u64);
        stream.set_io_timeout(cfg.io_timeout)?;
        let (version, already_done) =
            hello_exchange(&mut stream, ctt.rank, ctt.nprocs, SubmitMode::Ctt, cst_text)?;
        if already_done {
            stream.shutdown();
            return Ok(SubmitOutcome {
                already_done: true,
                events_sent: 0,
                attempts: attempt,
                ranks_done: 0,
            });
        }
        let frame = match &compressed {
            Some(z) if version >= 2 => Frame::RankCttZ {
                raw_len: bytes.len() as u64,
                bytes: z.clone(),
            },
            _ => Frame::RankCtt {
                bytes: bytes.clone(),
            },
        };
        write_frame(&mut stream, &frame)?;
        let ranks_done = read_fin_ack(&mut stream)?;
        stream.shutdown();
        Ok(SubmitOutcome {
            already_done: false,
            events_sent: 0,
            attempts: attempt,
            ranks_done,
        })
    })
}

/// One aligned buddy block a relay forwards upstream: ranks
/// `[first, first + count)` of the global job, deflated `MergedCtt` bytes.
#[derive(Debug, Clone)]
pub struct BlockUpload {
    pub first: u32,
    pub count: u32,
    /// Event total this block carries upstream (a relay puts its shard's
    /// whole total on the first block and 0 on the rest).
    pub events: u64,
    pub raw_mpi_bytes: u64,
    /// Serialized `MergedCtt` length before deflate.
    pub raw_len: u64,
    /// Deflated `MergedCtt` bytes.
    pub z: Vec<u8>,
}

/// Forward a relay's merged buddy blocks to its upstream collector. All
/// blocks plus the `Finish` pipeline in one write with a single
/// round-trip; duplicates are upstream no-ops, so a retry that re-sends
/// blocks which already landed is harmless. Requires the upstream to
/// negotiate protocol ≥ 4.
pub fn submit_merged_blocks(
    addr: &Addr,
    cfg: &ClientConfig,
    nprocs: u32,
    cst_text: &str,
    blocks: &[BlockUpload],
) -> Result<SubmitOutcome, NetError> {
    // The Hello rank only identifies the shard for validation.
    let hello_rank = blocks.first().map(|b| b.first).unwrap_or(0);
    with_retry(cfg, |attempt| {
        let mut stream = Stream::connect(addr, cfg.io_timeout)?;
        cypress_obs::trace_instant("net", "connect", hello_rank as u64);
        stream.set_io_timeout(cfg.io_timeout)?;
        let (version, _) = hello_exchange(
            &mut stream,
            hello_rank,
            nprocs,
            SubmitMode::Blocks,
            cst_text,
        )?;
        if version < 4 {
            return Err(NetError::Version { theirs: version });
        }
        let mut wire = Vec::new();
        for b in blocks {
            encode_frame_into(
                &Frame::MergedBlockZ {
                    first_rank: b.first,
                    nranks: b.count,
                    events: b.events,
                    raw_mpi_bytes: b.raw_mpi_bytes,
                    raw_len: b.raw_len,
                    bytes: b.z.clone(),
                },
                &mut wire,
            );
        }
        encode_frame_into(
            &Frame::Finish {
                app_time: 0,
                event_count: blocks.len() as u64,
            },
            &mut wire,
        );
        stream.write_all(&wire)?;
        stream.flush()?;
        let ranks_done = read_fin_ack(&mut stream)?;
        stream.shutdown();
        Ok(SubmitOutcome {
            already_done: false,
            events_sent: 0,
            attempts: attempt,
            ranks_done,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_to_dead_endpoint_exhausts_retries() {
        // Port 1 on localhost refuses immediately; keep backoff tiny.
        let addr = Addr::parse("127.0.0.1:1").unwrap();
        let cfg = ClientConfig {
            attempts: 3,
            backoff: Duration::from_millis(1),
            backoff_max: Duration::from_millis(2),
            io_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        };
        let err = submit_stream(&addr, &cfg, 0, 1, "Root()", |_| Ok(0)).unwrap_err();
        match err {
            NetError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 3),
            e => panic!("expected RetriesExhausted, got {e}"),
        }
    }

    #[test]
    fn producer_failure_does_not_retry() {
        // No listener needed: the producer only runs after connect, so use
        // a live listener that accepts and acks.
        let l = crate::transport::Listener::bind(&Addr::parse("127.0.0.1:0").unwrap()).unwrap();
        let addr = l.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut s = l.accept().unwrap();
            let _ = read_frame(&mut s).unwrap();
            write_frame(
                &mut s,
                &Frame::HelloAck {
                    version: 1,
                    already_done: false,
                },
            )
            .unwrap();
            // Keep the socket open until the client gives up.
            let _ = read_frame(&mut s);
        });
        let cfg = ClientConfig {
            attempts: 5,
            backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        let mut calls = 0;
        let err = submit_stream(&addr, &cfg, 0, 1, "Root()", |_| {
            calls += 1;
            Err("interpreter exploded".into())
        })
        .unwrap_err();
        assert!(matches!(err, NetError::Source(_)), "{err}");
        assert_eq!(calls, 1, "source errors must not retry");
        server.join().unwrap();
    }
}
