//! The framed wire protocol.
//!
//! Every message is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     body length N (u32, little-endian; N ≤ MAX_FRAME_BODY)
//! 4       N     body: u8 frame code, then the payload in the cypress
//!               varint codec (same Encoder/Decoder as the .cytc container)
//! 4+N     4     crc32(body) (u32 LE, gzip polynomial via cypress-deflate)
//! ```
//!
//! The CRC covers the whole body, so a torn or bit-flipped frame is
//! detected before any payload decoding runs. Versioning is negotiated in
//! the first exchange: the client's `Hello` carries its protocol version;
//! the collector answers `HelloAck` with `min(client, PROTO_VERSION)` if
//! that is ≥ [`PROTO_VERSION_MIN`], and an `Error` frame with
//! [`codes::VERSION`] otherwise.
//!
//! Frame sequences (client → collector unless noted):
//!
//! ```text
//! stream mode:  Hello → (HelloAck ←) → Events* → Finish → (FinAck ←)
//! ctt mode:     Hello → (HelloAck ←) → RankCtt | RankCttZ → (FinAck ←)
//! query mode:   QueryRequest → (QueryResponse ←), repeated per connection
//! any point:    Error ← (collector rejects; see codes)
//! ```
//!
//! Protocol version 2 adds `RankCttZ`: a DEFLATE-compressed rank CTT with
//! the raw length up front so the collector can bound decompression. A
//! client only sends it when the negotiated version is ≥ 2; against a v1
//! collector it falls back to the raw `RankCtt` frame.
//!
//! Protocol version 3 adds the analysis frames (`AnalyzeRequest` /
//! `AnalyzeResponse`) and tolerant decoding of frame codes from the
//! *future*: an unrecognized code decodes to [`Frame::Unknown`] instead of
//! a hard frame error, so a resident daemon can answer it with a `protocol`
//! error frame and keep the connection usable — the negotiation story for
//! old-server/new-client pairs on the query port, which exchanges no
//! `Hello`.
//!
//! Protocol version 4 adds the collector-tree frames: `Hello` mode 2
//! (`SubmitMode::Blocks`) opens an inter-collector session, and each
//! `MergedBlockZ` frame carries one DEFLATE-compressed *aligned buddy
//! block* of the global binomial merge — a relay's resident partial merges,
//! forwarded upstream without re-expanding to per-rank CTTs:
//!
//! ```text
//! blocks mode:  Hello → (HelloAck ←) → MergedBlockZ* → Finish → (FinAck ←)
//! ```
//!
//! `Finish.event_count` in blocks mode counts *blocks* (the cross-check the
//! stream mode applies to events), and a duplicate block — a relay retry
//! whose first attempt partially landed — is absorbed as a no-op exactly
//! like a duplicate rank.
//!
//! The `Finish`/`FinAck` round trip is the graceful-shutdown drain: a
//! client that received `FinAck` knows its rank is merged and may
//! disconnect; a client killed before `FinAck` must assume nothing and
//! retry from scratch (the collector discards partial sessions, and a
//! duplicate of an already-merged rank is acknowledged and dropped).

use crate::{obs, NetError};
use cypress_deflate::crc32;
use cypress_trace::codec::{Codec, Decoder, Encoder};
use cypress_trace::event::Event;
use std::io::{Read, Write};

/// Newest protocol version this build speaks.
pub const PROTO_VERSION: u8 = 4;

/// Oldest protocol version this build accepts.
pub const PROTO_VERSION_MIN: u8 = 1;

/// Upper bound on a frame body; larger length prefixes are rejected before
/// any allocation.
pub const MAX_FRAME_BODY: usize = 64 << 20;

/// Protocol error codes carried by [`Frame::Error`].
pub mod codes {
    /// Version outside the collector's supported range.
    pub const VERSION: u16 = 1;
    /// Rank out of range, or job size mismatch between clients.
    pub const BAD_RANK: u16 = 2;
    /// The client's CST does not match the one the job was opened with.
    pub const CST_MISMATCH: u16 = 3;
    /// Frame sequence violation (e.g. `Events` before `Hello`).
    pub const PROTOCOL: u16 = 4;
    /// The collector is shutting down and no longer accepts submissions.
    pub const SHUTDOWN: u16 = 5;
    /// Internal collector failure.
    pub const INTERNAL: u16 = 6;
    /// Transient overload; the client should back off and retry.
    pub const BUSY: u16 = 7;
    /// The requested job does not exist in the served store.
    pub const NOT_FOUND: u16 = 8;

    pub fn name(code: u16) -> &'static str {
        match code {
            VERSION => "version",
            BAD_RANK => "bad-rank",
            CST_MISMATCH => "cst-mismatch",
            PROTOCOL => "protocol",
            SHUTDOWN => "shutdown",
            INTERNAL => "internal",
            BUSY => "busy",
            NOT_FOUND => "not-found",
            _ => "unknown",
        }
    }
}

/// How a client delivers its rank's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitMode {
    /// Raw events stream in `Events` chunks; the collector compresses
    /// online in a `CompressSession`.
    Stream,
    /// The client compressed locally and ships the finished CTT bytes.
    Ctt,
    /// The peer is a mid-tier relay collector forwarding already-merged
    /// buddy blocks of the global binomial tree (protocol ≥ 4).
    Blocks,
}

impl SubmitMode {
    fn code(self) -> u8 {
        match self {
            SubmitMode::Stream => 0,
            SubmitMode::Ctt => 1,
            SubmitMode::Blocks => 2,
        }
    }

    fn from_code(c: u8) -> Option<SubmitMode> {
        match c {
            0 => Some(SubmitMode::Stream),
            1 => Some(SubmitMode::Ctt),
            2 => Some(SubmitMode::Blocks),
            _ => None,
        }
    }
}

const FR_HELLO: u8 = 1;
const FR_HELLO_ACK: u8 = 2;
const FR_EVENTS: u8 = 3;
const FR_FINISH: u8 = 4;
const FR_FIN_ACK: u8 = 5;
const FR_RANK_CTT: u8 = 6;
const FR_ERROR: u8 = 7;
const FR_RANK_CTT_Z: u8 = 8;
const FR_STATS_REQ: u8 = 9;
const FR_STATS: u8 = 10;
const FR_QUERY_REQ: u8 = 11;
const FR_QUERY_RESP: u8 = 12;
const FR_ANALYZE_REQ: u8 = 13;
const FR_ANALYZE_RESP: u8 = 14;
const FR_MERGED_BLOCK_Z: u8 = 15;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client identification: protocol version, rank, job size, delivery
    /// mode, and the CST text the trace was recorded against. The first
    /// client's CST defines the job; later clients must match it.
    Hello {
        version: u8,
        rank: u32,
        nprocs: u32,
        mode: SubmitMode,
        cst_text: String,
    },
    /// Collector acceptance: the negotiated version, and whether this rank
    /// is already merged (a retried client can stop immediately).
    HelloAck { version: u8, already_done: bool },
    /// A chunk of raw trace events, in execution order.
    Events { events: Vec<Event> },
    /// End of stream: the rank's application time and the total number of
    /// events sent (the collector cross-checks its own count).
    Finish { app_time: u64, event_count: u64 },
    /// The rank is merged; `ranks_done` of `nprocs` are in the tree.
    FinAck { ranks_done: u32 },
    /// A finished per-rank CTT in codec bytes (ctt mode).
    RankCtt { bytes: Vec<u8> },
    /// A finished per-rank CTT, DEFLATE-compressed (ctt mode, protocol ≥ 2).
    /// `raw_len` is the decompressed size, checked by the collector before
    /// and after inflation.
    RankCttZ { raw_len: u64, bytes: Vec<u8> },
    /// Ask a collector's stats endpoint for a live snapshot.
    StatsRequest,
    /// The snapshot. The payload is a self-versioned blob (see
    /// [`crate::stats::STATS_VERSION`]) nested as length-prefixed bytes, so
    /// fields appended by newer collectors never trip the frame-level
    /// trailing-bytes check.
    Stats { stats: crate::stats::Stats },
    /// Ask a resident query daemon to evaluate a query against one job in
    /// its store. `options` is an opaque, self-versioned blob (the query
    /// crate's canonical `QueryOptions` encoding) so the frame layer stays
    /// independent of the query engine.
    QueryRequest { job: String, options: Vec<u8> },
    /// The answer: an opaque, self-versioned `QueryResult` blob, nested as
    /// length-prefixed bytes like [`Frame::Stats`].
    QueryResponse { result: Vec<u8> },
    /// Ask a resident query daemon to run the compressed-domain analysis
    /// suite (replay prediction + wait-state detection) against one job.
    /// `options` is an opaque, self-versioned blob (the analysis crate's
    /// canonical `AnalyzeOptions` encoding), mirroring
    /// [`Frame::QueryRequest`].
    AnalyzeRequest { job: String, options: Vec<u8> },
    /// The answer: an opaque, self-versioned `AnalyzeReport` blob.
    AnalyzeResponse { result: Vec<u8> },
    /// One aligned buddy block of the global binomial merge, forwarded by a
    /// relay collector (blocks mode, protocol ≥ 4). `bytes` is a
    /// DEFLATE-compressed `MergedCtt` covering ranks
    /// `[first_rank, first_rank + nranks)`; `raw_len` bounds inflation like
    /// `RankCttZ`. `events`/`raw_mpi_bytes` carry the relay's accounting
    /// totals for the ranks in this frame (a relay puts its whole subtree's
    /// totals on the first block it forwards).
    MergedBlockZ {
        first_rank: u32,
        nranks: u32,
        events: u64,
        raw_mpi_bytes: u64,
        raw_len: u64,
        bytes: Vec<u8>,
    },
    /// Rejection; `code` is one of [`codes`].
    Error { code: u16, message: String },
    /// A frame code this build does not know (sent by a newer peer). Never
    /// encoded; produced by the decoder — with the payload discarded — so a
    /// server can answer with a `protocol` error frame instead of tearing
    /// the connection down.
    Unknown { code: u8 },
}

impl Frame {
    fn code(&self) -> u8 {
        match self {
            Frame::Hello { .. } => FR_HELLO,
            Frame::HelloAck { .. } => FR_HELLO_ACK,
            Frame::Events { .. } => FR_EVENTS,
            Frame::Finish { .. } => FR_FINISH,
            Frame::FinAck { .. } => FR_FIN_ACK,
            Frame::RankCtt { .. } => FR_RANK_CTT,
            Frame::RankCttZ { .. } => FR_RANK_CTT_Z,
            Frame::StatsRequest => FR_STATS_REQ,
            Frame::Stats { .. } => FR_STATS,
            Frame::QueryRequest { .. } => FR_QUERY_REQ,
            Frame::QueryResponse { .. } => FR_QUERY_RESP,
            Frame::AnalyzeRequest { .. } => FR_ANALYZE_REQ,
            Frame::AnalyzeResponse { .. } => FR_ANALYZE_RESP,
            Frame::MergedBlockZ { .. } => FR_MERGED_BLOCK_Z,
            Frame::Error { .. } => FR_ERROR,
            Frame::Unknown { code } => *code,
        }
    }

    /// Short name for logs and errors.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::HelloAck { .. } => "HelloAck",
            Frame::Events { .. } => "Events",
            Frame::Finish { .. } => "Finish",
            Frame::FinAck { .. } => "FinAck",
            Frame::RankCtt { .. } => "RankCtt",
            Frame::RankCttZ { .. } => "RankCttZ",
            Frame::StatsRequest => "StatsRequest",
            Frame::Stats { .. } => "Stats",
            Frame::QueryRequest { .. } => "QueryRequest",
            Frame::QueryResponse { .. } => "QueryResponse",
            Frame::AnalyzeRequest { .. } => "AnalyzeRequest",
            Frame::AnalyzeResponse { .. } => "AnalyzeResponse",
            Frame::MergedBlockZ { .. } => "MergedBlockZ",
            Frame::Error { .. } => "Error",
            Frame::Unknown { .. } => "Unknown",
        }
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(self.code());
        match self {
            Frame::Hello {
                version,
                rank,
                nprocs,
                mode,
                cst_text,
            } => {
                enc.put_u8(*version);
                enc.put_uvar(*rank as u64);
                enc.put_uvar(*nprocs as u64);
                enc.put_u8(mode.code());
                enc.put_str(cst_text);
            }
            Frame::HelloAck {
                version,
                already_done,
            } => {
                enc.put_u8(*version);
                enc.put_u8(*already_done as u8);
            }
            Frame::Events { events } => {
                enc.put_uvar(events.len() as u64);
                for ev in events {
                    ev.encode(&mut enc);
                }
            }
            Frame::Finish {
                app_time,
                event_count,
            } => {
                enc.put_uvar(*app_time);
                enc.put_uvar(*event_count);
            }
            Frame::FinAck { ranks_done } => enc.put_uvar(*ranks_done as u64),
            Frame::RankCtt { bytes } => enc.put_bytes(bytes),
            Frame::RankCttZ { raw_len, bytes } => {
                enc.put_uvar(*raw_len);
                enc.put_bytes(bytes);
            }
            Frame::StatsRequest => {}
            Frame::Stats { stats } => enc.put_bytes(&stats.encode()),
            Frame::QueryRequest { job, options } => {
                enc.put_str(job);
                enc.put_bytes(options);
            }
            Frame::QueryResponse { result } => enc.put_bytes(result),
            Frame::AnalyzeRequest { job, options } => {
                enc.put_str(job);
                enc.put_bytes(options);
            }
            Frame::AnalyzeResponse { result } => enc.put_bytes(result),
            Frame::MergedBlockZ {
                first_rank,
                nranks,
                events,
                raw_mpi_bytes,
                raw_len,
                bytes,
            } => {
                enc.put_uvar(*first_rank as u64);
                enc.put_uvar(*nranks as u64);
                enc.put_uvar(*events);
                enc.put_uvar(*raw_mpi_bytes);
                enc.put_uvar(*raw_len);
                enc.put_bytes(bytes);
            }
            Frame::Error { code, message } => {
                enc.put_uvar(*code as u64);
                enc.put_str(message);
            }
            Frame::Unknown { .. } => unreachable!("Unknown frames are never sent"),
        }
        enc.finish()
    }

    fn decode_body(body: &[u8]) -> Result<Frame, NetError> {
        let bad = |m: String| NetError::Frame(m);
        let mut dec = Decoder::new(body);
        let code = dec.get_u8().map_err(|e| bad(e.to_string()))?;
        let frame = match code {
            FR_HELLO => {
                let version = dec.get_u8().map_err(|e| bad(e.to_string()))?;
                let rank = dec.get_uvar().map_err(|e| bad(e.to_string()))? as u32;
                let nprocs = dec.get_uvar().map_err(|e| bad(e.to_string()))? as u32;
                let mode_code = dec.get_u8().map_err(|e| bad(e.to_string()))?;
                let mode = SubmitMode::from_code(mode_code)
                    .ok_or_else(|| bad(format!("bad submit mode {mode_code}")))?;
                let cst_text = dec.get_str().map_err(|e| bad(e.to_string()))?;
                Frame::Hello {
                    version,
                    rank,
                    nprocs,
                    mode,
                    cst_text,
                }
            }
            FR_HELLO_ACK => Frame::HelloAck {
                version: dec.get_u8().map_err(|e| bad(e.to_string()))?,
                already_done: dec.get_u8().map_err(|e| bad(e.to_string()))? != 0,
            },
            FR_EVENTS => {
                let n = dec.get_uvar().map_err(|e| bad(e.to_string()))? as usize;
                if n > MAX_FRAME_BODY {
                    return Err(bad(format!("absurd event count {n}")));
                }
                let mut events = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    events.push(Event::decode(&mut dec).map_err(|e| bad(e.to_string()))?);
                }
                Frame::Events { events }
            }
            FR_FINISH => Frame::Finish {
                app_time: dec.get_uvar().map_err(|e| bad(e.to_string()))?,
                event_count: dec.get_uvar().map_err(|e| bad(e.to_string()))?,
            },
            FR_FIN_ACK => Frame::FinAck {
                ranks_done: dec.get_uvar().map_err(|e| bad(e.to_string()))? as u32,
            },
            FR_RANK_CTT => Frame::RankCtt {
                bytes: dec.get_bytes().map_err(|e| bad(e.to_string()))?,
            },
            FR_RANK_CTT_Z => {
                let raw_len = dec.get_uvar().map_err(|e| bad(e.to_string()))?;
                if raw_len > MAX_FRAME_BODY as u64 {
                    return Err(bad(format!("absurd compressed-ctt raw length {raw_len}")));
                }
                Frame::RankCttZ {
                    raw_len,
                    bytes: dec.get_bytes().map_err(|e| bad(e.to_string()))?,
                }
            }
            FR_STATS_REQ => Frame::StatsRequest,
            FR_STATS => {
                let blob = dec.get_bytes().map_err(|e| bad(e.to_string()))?;
                let stats = crate::stats::Stats::decode(&mut Decoder::new(&blob))
                    .map_err(|e| bad(e.to_string()))?;
                Frame::Stats { stats }
            }
            FR_QUERY_REQ => Frame::QueryRequest {
                job: dec.get_str().map_err(|e| bad(e.to_string()))?,
                options: dec.get_bytes().map_err(|e| bad(e.to_string()))?,
            },
            FR_QUERY_RESP => Frame::QueryResponse {
                result: dec.get_bytes().map_err(|e| bad(e.to_string()))?,
            },
            FR_ANALYZE_REQ => Frame::AnalyzeRequest {
                job: dec.get_str().map_err(|e| bad(e.to_string()))?,
                options: dec.get_bytes().map_err(|e| bad(e.to_string()))?,
            },
            FR_ANALYZE_RESP => Frame::AnalyzeResponse {
                result: dec.get_bytes().map_err(|e| bad(e.to_string()))?,
            },
            FR_MERGED_BLOCK_Z => {
                let first_rank = dec.get_uvar().map_err(|e| bad(e.to_string()))? as u32;
                let nranks = dec.get_uvar().map_err(|e| bad(e.to_string()))? as u32;
                let events = dec.get_uvar().map_err(|e| bad(e.to_string()))?;
                let raw_mpi_bytes = dec.get_uvar().map_err(|e| bad(e.to_string()))?;
                let raw_len = dec.get_uvar().map_err(|e| bad(e.to_string()))?;
                if raw_len > MAX_FRAME_BODY as u64 {
                    return Err(bad(format!("absurd merged-block raw length {raw_len}")));
                }
                Frame::MergedBlockZ {
                    first_rank,
                    nranks,
                    events,
                    raw_mpi_bytes,
                    raw_len,
                    bytes: dec.get_bytes().map_err(|e| bad(e.to_string()))?,
                }
            }
            FR_ERROR => Frame::Error {
                code: dec.get_uvar().map_err(|e| bad(e.to_string()))? as u16,
                message: dec.get_str().map_err(|e| bad(e.to_string()))?,
            },
            // The CRC already vouched for the body; an unknown code means a
            // newer peer, not corruption. Discard the payload (we cannot
            // parse it) and surface the code so the server can reply with a
            // protocol error instead of dropping the connection.
            c => {
                let n = dec.remaining();
                dec.skip(n).map_err(|e| bad(e.to_string()))?;
                Frame::Unknown { code: c }
            }
        };
        if !dec.is_done() {
            return Err(bad(format!(
                "{} trailing bytes after {} frame",
                dec.remaining(),
                frame.name()
            )));
        }
        Ok(frame)
    }
}

/// Serialize one frame onto the end of `out` (length prefix + body + CRC).
///
/// This is the pipelining primitive: callers append many frames to one
/// buffer and issue a single `write_all`, so a burst of `Events` chunks or
/// relay blocks crosses the socket without per-frame syscalls or acks. The
/// per-frame tx accounting lives here so [`write_frame`] (which delegates)
/// never double-counts.
pub fn encode_frame_into(frame: &Frame, out: &mut Vec<u8>) {
    let body = frame.encode_body();
    debug_assert!(body.len() <= MAX_FRAME_BODY, "oversized frame body");
    out.reserve(body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    if cypress_obs::enabled() {
        let m = obs();
        m.bytes_out.add(body.len() as u64 + 8);
        m.frames_out.inc();
    }
    cypress_obs::trace_instant("net", "frame_tx", body.len() as u64 + 8);
}

/// Serialize and send one frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), NetError> {
    let mut msg = Vec::new();
    encode_frame_into(frame, &mut msg);
    w.write_all(&msg)?;
    w.flush()?;
    Ok(())
}

/// Receive and verify one frame. `Err(Frame(...))` covers a clean EOF
/// mid-frame; an EOF before any byte of the length prefix surfaces as
/// `Io(UnexpectedEof)` from the reader.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, NetError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME_BODY {
        return Err(NetError::Frame(format!("bad frame body length {len}")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)?;
    let stored = u32::from_le_bytes(crc_buf);
    let computed = crc32(&body);
    if stored != computed {
        return Err(NetError::Crc { stored, computed });
    }
    if cypress_obs::enabled() {
        let m = obs();
        m.bytes_in.add(len as u64 + 8);
        m.frames_in.inc();
    }
    cypress_obs::trace_instant("net", "frame_rx", len as u64 + 8);
    Frame::decode_body(&body)
}

/// A reusable per-connection receive buffer for nonblocking frame decode.
///
/// [`read_frame`] allocates a fresh body `Vec` per frame and blocks until
/// the frame is complete — fine for clients, wrong for an event loop
/// multiplexing thousands of connections. `FrameBuf` instead accumulates
/// whatever bytes the socket has (`fill`), then peels off as many complete
/// frames as arrived (`try_frame`), all inside one buffer whose capacity
/// stabilizes after warmup: steady-state traffic reallocates nothing.
///
/// Layout: `buf[start .. start + len]` holds unconsumed bytes. Consumed
/// frames advance `start`; `fill` compacts (a `copy_within`, not a realloc)
/// only when the tail runs out of spare room, and growth is bounded by the
/// largest pending frame (≤ [`MAX_FRAME_BODY`] + 8, enforced before any
/// allocation just like [`read_frame`]).
pub struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
    len: usize,
}

impl FrameBuf {
    pub fn new() -> FrameBuf {
        FrameBuf {
            buf: Vec::new(),
            start: 0,
            len: 0,
        }
    }

    /// Current backing capacity (the no-realloc tests pin this).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Read once from `r` into the spare tail. Returns the byte count (0 =
    /// EOF); `WouldBlock` bubbles up for the event loop to interpret.
    /// Callers should drain [`Self::try_frame`] between fills.
    pub fn fill(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        const CHUNK: usize = 16 * 1024;
        // Capacity target: the frame currently being assembled plus one
        // chunk of lookahead. The target is monotone over a connection's
        // life, so the buffer settles at (largest frame + CHUNK) and never
        // reallocates again — the no-realloc guarantee the tests pin.
        let pending = self.pending_total_len().unwrap_or(0);
        let want = (self.len.max(pending) + CHUNK).min(MAX_FRAME_BODY + 8 + CHUNK);
        if self.buf.len() < want {
            let target = want.max(2 * self.buf.len()).min(MAX_FRAME_BODY + 8 + CHUNK);
            self.buf.resize(target, 0);
        }
        // Reclaim consumed head room (a copy_within, not a realloc) when
        // the tail cannot take a full read.
        if self.start > 0 && self.start + self.len + CHUNK > self.buf.len() {
            self.buf.copy_within(self.start..self.start + self.len, 0);
            self.start = 0;
        }
        let spare = &mut self.buf[self.start + self.len..];
        let n = r.read(spare)?;
        self.len += n;
        Ok(n)
    }

    /// The full wire length (prefix + body + crc) of the frame at `start`,
    /// if enough of the prefix has arrived to know it.
    fn pending_total_len(&self) -> Option<usize> {
        if self.len < 4 {
            return None;
        }
        let p = &self.buf[self.start..self.start + 4];
        let body_len = u32::from_le_bytes([p[0], p[1], p[2], p[3]]) as usize;
        Some(body_len + 8)
    }

    /// Decode one complete frame if buffered; `Ok(None)` means more bytes
    /// are needed. Validation order matches [`read_frame`]: length bound
    /// before anything else, CRC before body decode.
    pub fn try_frame(&mut self) -> Result<Option<Frame>, NetError> {
        if self.len < 4 {
            return Ok(None);
        }
        let body_len = {
            let p = &self.buf[self.start..self.start + 4];
            u32::from_le_bytes([p[0], p[1], p[2], p[3]]) as usize
        };
        if body_len == 0 || body_len > MAX_FRAME_BODY {
            return Err(NetError::Frame(format!("bad frame body length {body_len}")));
        }
        let total = body_len + 8;
        if self.len < total {
            return Ok(None);
        }
        let body = &self.buf[self.start + 4..self.start + 4 + body_len];
        let crc_at = self.start + 4 + body_len;
        let stored = u32::from_le_bytes([
            self.buf[crc_at],
            self.buf[crc_at + 1],
            self.buf[crc_at + 2],
            self.buf[crc_at + 3],
        ]);
        let computed = crc32(body);
        if stored != computed {
            return Err(NetError::Crc { stored, computed });
        }
        if cypress_obs::enabled() {
            let m = obs();
            m.bytes_in.add(total as u64);
            m.frames_in.inc();
        }
        cypress_obs::trace_instant("net", "frame_rx", total as u64);
        let frame = Frame::decode_body(body)?;
        self.start += total;
        self.len -= total;
        if self.len == 0 {
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

impl Default for FrameBuf {
    fn default() -> Self {
        FrameBuf::new()
    }
}

/// Convenience: send a [`Frame::Error`] and ignore delivery failures (the
/// peer may already be gone).
pub fn send_error(w: &mut impl Write, code: u16, message: impl Into<String>) {
    let _ = write_frame(
        w,
        &Frame::Error {
            code,
            message: message.into(),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_trace::event::{MpiOp, MpiParams, MpiRecord};

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTO_VERSION,
                rank: 3,
                nprocs: 8,
                mode: SubmitMode::Stream,
                cst_text: "Root()".into(),
            },
            Frame::HelloAck {
                version: 1,
                already_done: true,
            },
            Frame::Events {
                events: vec![
                    Event::Enter { gid: 1 },
                    Event::Mpi(MpiRecord {
                        gid: 2,
                        op: MpiOp::Send,
                        params: MpiParams::send(1, 4096, 7),
                        t_start: 100,
                        dur: 250,
                    }),
                    Event::Exit { gid: 1 },
                ],
            },
            Frame::Finish {
                app_time: 123_456,
                event_count: 3,
            },
            Frame::FinAck { ranks_done: 8 },
            Frame::RankCtt {
                bytes: vec![1, 2, 3],
            },
            Frame::RankCttZ {
                raw_len: 4096,
                bytes: vec![9, 8, 7, 6],
            },
            Frame::StatsRequest,
            Frame::Stats {
                stats: crate::stats::Stats {
                    version: crate::stats::STATS_VERSION,
                    uptime_ns: 5_000_000,
                    nprocs: 4,
                    ranks_done: 2,
                    events_total: 1000,
                    events_per_sec_x1000: 200_000,
                    merge_depth: 1,
                    resident_blocks: 1,
                    clients: vec![crate::stats::ClientStat {
                        rank: 0,
                        state: crate::stats::ClientState::Merged,
                        events: 500,
                    }],
                    quantiles: vec![],
                },
            },
            Frame::QueryRequest {
                job: "jacobi-0042".into(),
                options: vec![1, 0, 10],
            },
            Frame::QueryResponse {
                result: vec![1, 4, 0],
            },
            Frame::AnalyzeRequest {
                job: "jacobi-0042".into(),
                options: vec![1, 1, 5, 9],
            },
            Frame::AnalyzeResponse {
                result: vec![1, 2, 0, 0],
            },
            Frame::MergedBlockZ {
                first_rank: 4,
                nranks: 4,
                events: 2048,
                raw_mpi_bytes: 1 << 20,
                raw_len: 512,
                bytes: vec![5, 4, 3, 2, 1],
            },
            Frame::Error {
                code: codes::CST_MISMATCH,
                message: "structure differs".into(),
            },
        ]
    }

    #[test]
    fn frames_round_trip_through_a_pipe() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = &wire[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn corrupted_body_fails_crc() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::FinAck { ranks_done: 4 }).unwrap();
        let mid = 4 + (wire.len() - 8) / 2;
        wire[mid] ^= 0x40;
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(NetError::Crc { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0; 16]);
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(NetError::Frame(_))
        ));
    }

    #[test]
    fn zero_length_body_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&0u32.to_le_bytes());
        wire.extend_from_slice(&crc32(b"").to_le_bytes());
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(NetError::Frame(_))
        ));
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Finish {
                app_time: 1,
                event_count: 2,
            },
        )
        .unwrap();
        for cut in [2, 5, wire.len() - 1] {
            assert!(read_frame(&mut &wire[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_in_body_rejected() {
        let mut body = Frame::FinAck { ranks_done: 1 }.encode_body();
        body.push(0xaa);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        wire.extend_from_slice(&crc32(&body).to_le_bytes());
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert!(matches!(err, NetError::Frame(_)), "{err}");
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn absurd_compressed_ctt_raw_length_rejected() {
        let mut enc = Encoder::new();
        enc.put_u8(FR_RANK_CTT_Z);
        enc.put_uvar(MAX_FRAME_BODY as u64 + 1);
        enc.put_bytes(&[1, 2, 3]);
        let body = enc.finish();
        let err = Frame::decode_body(&body).unwrap_err();
        assert!(err.to_string().contains("raw length"), "{err}");
    }

    #[test]
    fn absurd_merged_block_raw_length_rejected() {
        let mut enc = Encoder::new();
        enc.put_u8(FR_MERGED_BLOCK_Z);
        enc.put_uvar(0);
        enc.put_uvar(4);
        enc.put_uvar(10);
        enc.put_uvar(10);
        enc.put_uvar(MAX_FRAME_BODY as u64 + 1);
        enc.put_bytes(&[1, 2, 3]);
        let body = enc.finish();
        let err = Frame::decode_body(&body).unwrap_err();
        assert!(err.to_string().contains("raw length"), "{err}");
    }

    #[test]
    fn framebuf_decodes_a_split_delivery_burst() {
        // Frames arriving in arbitrary fragments (worst case: one byte at a
        // time) must come out whole and in order.
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame_into(f, &mut wire);
        }
        let mut fb = FrameBuf::new();
        let mut decoded = Vec::new();
        for chunk in wire.chunks(7) {
            let mut r = chunk;
            while !r.is_empty() {
                fb.fill(&mut r).unwrap();
            }
            while let Some(f) = fb.try_frame().unwrap() {
                decoded.push(f);
            }
        }
        assert_eq!(decoded, frames);
    }

    #[test]
    fn framebuf_capacity_is_stable_across_a_multi_frame_burst() {
        // Satellite requirement: the per-connection read buffer is reused —
        // after a warmup burst, thousands more frames of the same shape
        // must not grow (reallocate) the backing buffer.
        let make_burst = |n: usize| {
            let mut wire = Vec::new();
            for i in 0..n {
                encode_frame_into(
                    &Frame::Events {
                        events: vec![
                            Event::Enter { gid: i as u32 },
                            Event::Exit { gid: i as u32 },
                        ],
                    },
                    &mut wire,
                );
            }
            wire
        };
        let mut fb = FrameBuf::new();
        let warmup = make_burst(256);
        let mut r = &warmup[..];
        while fb.fill(&mut r).unwrap() > 0 {
            while let Some(_f) = fb.try_frame().unwrap() {}
        }
        let settled = fb.capacity();
        assert!(settled > 0);
        let burst = make_burst(4096);
        let mut r = &burst[..];
        loop {
            let n = fb.fill(&mut r).unwrap();
            while let Some(_f) = fb.try_frame().unwrap() {}
            if n == 0 {
                break;
            }
        }
        assert_eq!(
            fb.capacity(),
            settled,
            "read buffer reallocated during steady-state burst"
        );
    }

    #[test]
    fn framebuf_rejects_bad_length_and_crc() {
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &wire[..];
        fb.fill(&mut r).unwrap();
        assert!(matches!(fb.try_frame(), Err(NetError::Frame(_))));

        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        encode_frame_into(&Frame::FinAck { ranks_done: 4 }, &mut wire);
        let mid = 4 + (wire.len() - 8) / 2;
        wire[mid] ^= 0x40;
        let mut r = &wire[..];
        while fb.fill(&mut r).unwrap() > 0 {}
        assert!(matches!(fb.try_frame(), Err(NetError::Crc { .. })));
    }

    #[test]
    fn unknown_frame_code_decodes_tolerantly() {
        // A future frame code with an arbitrary payload must decode to
        // Frame::Unknown (payload discarded) rather than a frame error, so
        // a server can answer it and keep the connection; the stream must
        // stay aligned for the next frame.
        let body = vec![0xeeu8, 1, 2];
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        wire.extend_from_slice(&crc32(&body).to_le_bytes());
        write_frame(&mut wire, &Frame::FinAck { ranks_done: 2 }).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Unknown { code: 0xee });
        assert_eq!(read_frame(&mut r).unwrap(), Frame::FinAck { ranks_done: 2 });
        assert!(r.is_empty());
    }
}
