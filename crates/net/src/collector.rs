//! The collector daemon.
//!
//! One [`Collector`] gathers a whole job: it accepts many concurrent
//! clients (TCP or Unix sockets), feeds each stream-mode client into its
//! own [`CompressSession`] so raw events never accumulate server-side, and
//! reduces finished rank CTTs through a [`BinomialMerger`] **as they
//! arrive** — no barrier on the full rank set. Connections are handled by
//! the `runtime` work-stealing pool; the accept loop is non-blocking and
//! queues sockets for the workers, counting backpressure stalls when every
//! worker is busy.
//!
//! Failure model: a client that disconnects (or corrupts a frame)
//! mid-stream loses only its own partial session — the collector discards
//! it and the retried client re-streams from scratch. A rank submitted
//! twice (a retry whose first attempt actually landed) is acknowledged and
//! discarded; [`BinomialMerger`] is first-completion-wins, so a
//! killed-and-retried client can never corrupt the merged job.

use crate::proto::{
    codes, read_frame, send_error, write_frame, Frame, SubmitMode, PROTO_VERSION, PROTO_VERSION_MIN,
};
use crate::stats::{ClientStat, ClientState, QuantileStat, Stats, STATS_VERSION};
use crate::transport::{Addr, Listener, Stream};
use crate::{obs, NetError};
use cypress_core::{
    BinomialMerger, CompressConfig, CompressSession, Ctt, MergedCtt, SessionConfig,
};
use cypress_cst::Cst;
use cypress_deflate::crc32;
use cypress_obs::{obs_log, Level};
use cypress_runtime::run_ranks;
use cypress_trace::codec::Codec;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Collector knobs.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Connection-handling workers (0 = one per core, capped at 8).
    pub workers: usize,
    /// Per-request read/write timeout on client sockets.
    pub io_timeout: Duration,
    /// Keep every rank's CTT (exact per-rank timing in queries and
    /// `--per-rank` containers) in addition to the incremental merge.
    pub keep_rank_ctts: bool,
    /// Overall wall-clock budget; when it expires with ranks missing the
    /// run fails listing them instead of hanging forever.
    pub deadline: Option<Duration>,
    /// Compression knobs for server-side sessions (stream mode).
    pub compress: CompressConfig,
    /// Session knobs for server-side sessions (stream mode).
    pub session: SessionConfig,
    /// Serve live [`Stats`] snapshots on a second endpoint
    /// (`cypress serve --stats-addr`). `None` disables telemetry.
    /// Ephemeral-port callers (tests) should prefer
    /// [`Collector::bind_stats`], which reports the resolved address.
    pub stats_addr: Option<Addr>,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            workers: 0,
            io_timeout: Duration::from_secs(10),
            keep_rank_ctts: true,
            deadline: None,
            compress: CompressConfig::default(),
            session: SessionConfig::default(),
            stats_addr: None,
        }
    }
}

/// Everything a finished collection produced — the networked counterpart
/// of the local pipeline's `CompressedJob`.
#[derive(Debug)]
pub struct CollectedJob {
    pub nprocs: u32,
    pub cst: Cst,
    /// Canonical CST text as received in the first `Hello` (persisted
    /// verbatim into containers).
    pub cst_text: String,
    /// The binomial-merged whole-job tree — byte-identical to a local
    /// `merge_all` over the same rank CTTs.
    pub merged: MergedCtt,
    /// Per-rank CTTs in rank order (empty when
    /// [`CollectorConfig::keep_rank_ctts`] is off).
    pub rank_ctts: Vec<Ctt>,
    /// Total MPI events across ranks (session accounting for stream mode,
    /// record counts for ctt mode — identical values).
    pub total_events: u64,
    /// Raw serialized size of the MPI records before compression (stream
    /// mode only; 0 for ctt-mode ranks).
    pub raw_mpi_bytes: u64,
    /// Largest live server-side CTT footprint any session reached.
    pub peak_ctt_bytes: usize,
}

/// Job identity, fixed by the first client's `Hello`.
struct JobInfo {
    nprocs: u32,
    cst_text: String,
    cst_crc: u32,
    cst: Cst,
}

struct Inner {
    queue: VecDeque<Stream>,
    merger: Option<BinomialMerger>,
    rank_ctts: Vec<Ctt>,
    total_events: u64,
    raw_mpi_bytes: u64,
    peak_ctt_bytes: usize,
    done: bool,
    fatal: Option<String>,
    /// Per-rank submission state and received-event counts, feeding the
    /// live [`Stats`] snapshot. Rank-keyed: a retry of a merged rank never
    /// regresses its state.
    clients: BTreeMap<u32, (ClientState, u64)>,
}

struct State {
    job: OnceLock<JobInfo>,
    inner: Mutex<Inner>,
    cv: Condvar,
    started: Instant,
}

impl State {
    fn stop_requested(&self) -> bool {
        let g = self.inner.lock().unwrap();
        g.done || g.fatal.is_some()
    }

    /// Mark a rank's submission state, never downgrading `Merged` (a late
    /// duplicate or abort of a rank that already landed changes nothing).
    fn mark_client(&self, rank: u32, st: ClientState) {
        let mut g = self.inner.lock().unwrap();
        let e = g.clients.entry(rank).or_insert((st, 0));
        if e.0 != ClientState::Merged {
            e.0 = st;
        }
    }
}

/// Collector-side measurements feeding the `Stats` quantile rows. These use
/// the ungated [`cypress_obs::Histogram::record`] path so the stats
/// endpoint reports real numbers whether or not the daemon runs with
/// metrics enabled.
struct CollectorHists {
    /// Events per `Events` frame (client batch sizes as received).
    batch_events: cypress_obs::Histogram,
    /// Wall time of one binomial merge step (`BinomialMerger::add`).
    merge_step_ns: cypress_obs::Histogram,
}

fn hists() -> &'static CollectorHists {
    static H: OnceLock<CollectorHists> = OnceLock::new();
    H.get_or_init(|| {
        let s = cypress_obs::scope("collector");
        CollectorHists {
            batch_events: s.histogram("batch_events", &[1, 8, 64, 512, 4096, 32768]),
            merge_step_ns: s.histogram("merge_step_ns", &cypress_obs::TIME_BOUNDS_NS),
        }
    })
}

/// A bound collector. Binding is split from running so callers (tests, the
/// bench, `cypress serve` with port 0) can learn the resolved address
/// before clients start.
pub struct Collector {
    listener: Listener,
    stats_listener: Option<Listener>,
}

impl Collector {
    pub fn bind(addr: &Addr) -> Result<Collector, NetError> {
        Ok(Collector {
            listener: Listener::bind(addr)?,
            stats_listener: None,
        })
    }

    /// The resolved listen address (ephemeral TCP ports filled in).
    pub fn local_addr(&self) -> Result<Addr, NetError> {
        self.listener.local_addr()
    }

    /// Bind the live-telemetry endpoint up front and return its resolved
    /// address. Takes precedence over [`CollectorConfig::stats_addr`];
    /// callers using ephemeral ports (tests, `--stats-addr 127.0.0.1:0`)
    /// need the resolved address before `run` blocks.
    pub fn bind_stats(&mut self, addr: &Addr) -> Result<Addr, NetError> {
        let l = Listener::bind(addr)?;
        let resolved = l.local_addr()?;
        self.stats_listener = Some(l);
        Ok(resolved)
    }

    /// Serve until every rank of the job (sized by the first `Hello`) is
    /// merged, then return the collected job. Blocks the calling thread;
    /// connection handling runs on the work-stealing pool.
    pub fn run(mut self, cfg: &CollectorConfig) -> Result<CollectedJob, NetError> {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8)
        } else {
            cfg.workers
        };
        if self.stats_listener.is_none() {
            if let Some(addr) = &cfg.stats_addr {
                self.bind_stats(addr)?;
            }
        }
        let state = State {
            job: OnceLock::new(),
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                merger: None,
                rank_ctts: Vec::new(),
                total_events: 0,
                raw_mpi_bytes: 0,
                peak_ctt_bytes: 0,
                done: false,
                fatal: None,
                clients: BTreeMap::new(),
            }),
            cv: Condvar::new(),
            started: Instant::now(),
        };
        self.listener.set_nonblocking(true)?;
        if let Some(sl) = &self.stats_listener {
            sl.set_nonblocking(true)?;
            obs_log!(
                Level::Info,
                "net",
                "collector stats endpoint on {}",
                sl.local_addr().map(|a| a.to_string()).unwrap_or_default()
            );
        }
        obs_log!(
            Level::Info,
            "net",
            "collector listening on {} with {workers} workers",
            self.listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_default()
        );
        std::thread::scope(|scope| {
            let accept = scope.spawn(|| accept_loop(&self.listener, &state, cfg, workers));
            if let Some(sl) = &self.stats_listener {
                scope.spawn(|| stats_loop(sl, &state, cfg));
            }
            run_ranks(workers as u32, workers, |_| worker_loop(&state, cfg));
            accept.join().expect("accept loop panicked");
        });

        let inner = state.inner.into_inner().unwrap();
        if let Some(f) = inner.fatal {
            return Err(NetError::Collect(f));
        }
        let job = state
            .job
            .into_inner()
            .ok_or_else(|| NetError::Collect("no client ever connected".into()))?;
        let merger = inner
            .merger
            .ok_or_else(|| NetError::Collect("no rank completed".into()))?;
        let merged = merger.finish();
        let mut rank_ctts = inner.rank_ctts;
        rank_ctts.sort_by_key(|c| c.rank);
        Ok(CollectedJob {
            nprocs: job.nprocs,
            cst: job.cst,
            cst_text: job.cst_text,
            merged,
            rank_ctts,
            total_events: inner.total_events,
            raw_mpi_bytes: inner.raw_mpi_bytes,
            peak_ctt_bytes: inner.peak_ctt_bytes,
        })
    }
}

fn accept_loop(listener: &Listener, state: &State, cfg: &CollectorConfig, workers: usize) {
    let started = Instant::now();
    loop {
        if state.stop_requested() {
            return;
        }
        if let Some(deadline) = cfg.deadline {
            if started.elapsed() > deadline {
                let mut g = state.inner.lock().unwrap();
                if !g.done {
                    let missing = g
                        .merger
                        .as_ref()
                        .map(|m| format!("{:?}", m.missing_ranks()))
                        .unwrap_or_else(|| "all".into());
                    g.fatal = Some(format!(
                        "deadline {deadline:?} exceeded with ranks missing: {missing}"
                    ));
                }
                state.cv.notify_all();
                return;
            }
        }
        match listener.accept() {
            Ok(stream) => {
                if cypress_obs::enabled() {
                    obs().connections.inc();
                }
                let mut g = state.inner.lock().unwrap();
                if g.queue.len() >= workers && cypress_obs::enabled() {
                    obs().backpressure_stalls.inc();
                }
                g.queue.push_back(stream);
                drop(g);
                state.cv.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                let mut g = state.inner.lock().unwrap();
                g.fatal = Some(format!("listener failed: {e}"));
                drop(g);
                state.cv.notify_all();
                return;
            }
        }
    }
}

/// Serve live telemetry: one `StatsRequest` in, one `Stats` out, per
/// connection. Runs on its own listener so a monitoring poll can never
/// perturb the job protocol; exits when the collection does.
fn stats_loop(listener: &Listener, state: &State, cfg: &CollectorConfig) {
    loop {
        if state.stop_requested() {
            return;
        }
        match listener.accept() {
            Ok(mut stream) => {
                if let Err(e) = serve_stats_once(state, cfg, &mut stream) {
                    obs_log!(Level::Debug, "net", "stats request failed: {e}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                obs_log!(Level::Warn, "net", "stats listener failed: {e}");
                return;
            }
        }
    }
}

fn serve_stats_once(
    state: &State,
    cfg: &CollectorConfig,
    stream: &mut Stream,
) -> Result<(), NetError> {
    stream.set_io_timeout(cfg.io_timeout)?;
    let frame = read_frame(stream)?;
    match frame {
        Frame::StatsRequest => {
            let stats = build_stats(state);
            write_frame(stream, &Frame::Stats { stats })?;
            stream.shutdown();
            Ok(())
        }
        f => {
            send_error(
                stream,
                codes::PROTOCOL,
                format!("stats endpoint expects StatsRequest, got {}", f.name()),
            );
            Err(NetError::Protocol(format!("unexpected {}", f.name())))
        }
    }
}

/// Snapshot the running collection into a wire-ready [`Stats`].
fn build_stats(state: &State) -> Stats {
    let g = state.inner.lock().unwrap();
    let uptime_ns = state.started.elapsed().as_nanos() as u64;
    let (ranks_done, merge_depth, resident_blocks) = match &g.merger {
        Some(m) => (m.received(), m.max_depth(), m.pending_blocks() as u32),
        None => (0, 0, 0),
    };
    let events_total = g.total_events.max(
        // Mid-stream events are not yet in total_events; count them so the
        // rate reflects live receive progress, not just merged ranks.
        g.clients.values().map(|&(_, ev)| ev).sum(),
    );
    let events_per_sec_x1000 = if uptime_ns == 0 {
        0
    } else {
        ((events_total as u128 * 1_000_000_000_000u128) / uptime_ns as u128) as u64
    };
    let clients = g
        .clients
        .iter()
        .map(|(&rank, &(st, events))| ClientStat {
            rank,
            state: st,
            events,
        })
        .collect();
    let h = hists();
    let quantiles = [
        ("batch_events", &h.batch_events),
        ("merge_step_ns", &h.merge_step_ns),
    ]
    .into_iter()
    .filter(|(_, h)| h.count() > 0)
    .map(|(name, h)| QuantileStat {
        name: name.to_string(),
        count: h.count(),
        p50: h.quantile(0.50),
        p90: h.quantile(0.90),
        p99: h.quantile(0.99),
    })
    .collect();
    Stats {
        version: STATS_VERSION,
        uptime_ns,
        nprocs: state.job.get().map(|j| j.nprocs).unwrap_or(0),
        ranks_done,
        events_total,
        events_per_sec_x1000,
        merge_depth,
        resident_blocks,
        clients,
        quantiles,
    }
}

fn worker_loop(state: &State, cfg: &CollectorConfig) {
    loop {
        let stream = {
            let mut g = state.inner.lock().unwrap();
            loop {
                if g.done || g.fatal.is_some() {
                    return;
                }
                if let Some(s) = g.queue.pop_front() {
                    break s;
                }
                let (g2, _) = state.cv.wait_timeout(g, Duration::from_millis(50)).unwrap();
                g = g2;
            }
        };
        let mut stream = stream;
        if let Err(e) = handle_connection(state, cfg, &mut stream) {
            obs_log!(Level::Warn, "net", "connection dropped: {e}");
        }
    }
}

fn handle_connection(
    state: &State,
    cfg: &CollectorConfig,
    stream: &mut Stream,
) -> Result<(), NetError> {
    stream.set_io_timeout(cfg.io_timeout)?;
    let frame = read_frame(stream)?;
    let Frame::Hello {
        version,
        rank,
        nprocs,
        mode,
        cst_text,
    } = frame
    else {
        send_error(stream, codes::PROTOCOL, "first frame must be Hello");
        return Err(NetError::Protocol(format!(
            "first frame was {}",
            frame.name()
        )));
    };
    if version < PROTO_VERSION_MIN {
        send_error(
            stream,
            codes::VERSION,
            format!("version {version} below minimum {PROTO_VERSION_MIN}"),
        );
        return Err(NetError::Version { theirs: version });
    }
    let negotiated = version.min(PROTO_VERSION);
    if nprocs == 0 || rank >= nprocs {
        send_error(
            stream,
            codes::BAD_RANK,
            format!("rank {rank} out of range for {nprocs} procs"),
        );
        return Err(NetError::Protocol(format!("bad rank {rank}/{nprocs}")));
    }

    // First Hello fixes the job: CST, job size, and the merger. Later
    // clients must match it exactly (CRC over the canonical CST text).
    let client_crc = crc32(cst_text.as_bytes());
    let job = match state.job.get() {
        Some(j) => j,
        None => {
            match Cst::from_text(&cst_text) {
                Ok(cst) => {
                    let info = JobInfo {
                        nprocs,
                        cst_crc: client_crc,
                        cst_text,
                        cst,
                    };
                    // Another worker may have won the race; either way the
                    // stored job is authoritative and validated below.
                    let _ = state.job.set(info);
                }
                Err(e) => {
                    send_error(stream, codes::INTERNAL, format!("unparseable CST: {e}"));
                    return Err(NetError::Protocol(format!("unparseable CST: {e}")));
                }
            }
            state.job.get().expect("just set")
        }
    };
    if job.nprocs != nprocs {
        send_error(
            stream,
            codes::BAD_RANK,
            format!("job has {} procs, client claims {nprocs}", job.nprocs),
        );
        return Err(NetError::Protocol("job size mismatch".into()));
    }
    if job.cst_crc != client_crc {
        send_error(
            stream,
            codes::CST_MISMATCH,
            "client CST differs from the CST this job was opened with",
        );
        return Err(NetError::Protocol("cst mismatch".into()));
    }

    {
        let mut g = state.inner.lock().unwrap();
        if g.merger.is_none() {
            g.merger = Some(BinomialMerger::new(job.nprocs));
        }
        if g.merger.as_ref().expect("just set").has_rank(rank) {
            drop(g);
            write_frame(
                stream,
                &Frame::HelloAck {
                    version: negotiated,
                    already_done: true,
                },
            )?;
            stream.shutdown();
            return Ok(());
        }
    }
    write_frame(
        stream,
        &Frame::HelloAck {
            version: negotiated,
            already_done: false,
        },
    )?;
    state.mark_client(rank, ClientState::Streaming);
    cypress_obs::trace_instant("net", "client_accepted", rank as u64);

    let res = match mode {
        SubmitMode::Stream => handle_stream(state, cfg, stream, job, rank),
        SubmitMode::Ctt => handle_ctt(state, cfg, stream, rank),
    };
    if res.is_err() {
        // Any failure past the accepted Hello counts as an aborted
        // submission (no-op if the rank merged before the error).
        state.mark_client(rank, ClientState::Aborted);
    }
    res
}

fn handle_stream(
    state: &State,
    cfg: &CollectorConfig,
    stream: &mut Stream,
    job: &JobInfo,
    rank: u32,
) -> Result<(), NetError> {
    if cypress_obs::enabled() {
        obs().sessions_started.inc();
    }
    let mut session = CompressSession::new(
        &job.cst,
        rank,
        job.nprocs,
        cfg.compress.clone(),
        cfg.session.clone(),
    );
    let mut count: u64 = 0;
    let app_time = loop {
        let frame = match read_frame(stream) {
            Ok(f) => f,
            Err(e) => {
                // Disconnect or corruption mid-stream: drop the partial
                // session; the client will retry from scratch.
                if cypress_obs::enabled() {
                    obs().sessions_aborted.inc();
                }
                return Err(e);
            }
        };
        match frame {
            Frame::Events { events } => {
                count += events.len() as u64;
                hists().batch_events.record(events.len() as u64);
                {
                    let mut g = state.inner.lock().unwrap();
                    let e = g.clients.entry(rank).or_insert((ClientState::Streaming, 0));
                    e.1 += events.len() as u64;
                }
                session.push_batch(&events);
            }
            Frame::Finish {
                app_time,
                event_count,
            } => {
                if event_count != count {
                    if cypress_obs::enabled() {
                        obs().sessions_aborted.inc();
                    }
                    send_error(
                        stream,
                        codes::PROTOCOL,
                        format!("client sent {event_count} events, collector saw {count}"),
                    );
                    return Err(NetError::Protocol("event count mismatch".into()));
                }
                break app_time;
            }
            f => {
                if cypress_obs::enabled() {
                    obs().sessions_aborted.inc();
                }
                send_error(
                    stream,
                    codes::PROTOCOL,
                    format!("unexpected {} during event stream", f.name()),
                );
                return Err(NetError::Protocol(format!("unexpected {}", f.name())));
            }
        }
    };
    let (ctt, stats) = session.finish(app_time);
    let ranks_done = merge_in(state, ctt, Some(stats), cfg.keep_rank_ctts);
    write_frame(stream, &Frame::FinAck { ranks_done })?;
    stream.shutdown();
    Ok(())
}

fn handle_ctt(
    state: &State,
    cfg: &CollectorConfig,
    stream: &mut Stream,
    rank: u32,
) -> Result<(), NetError> {
    let frame = read_frame(stream)?;
    let bytes = match frame {
        Frame::RankCtt { bytes } => bytes,
        Frame::RankCttZ { raw_len, bytes } => match cypress_deflate::inflate(&bytes) {
            Ok(raw) if raw.len() as u64 == raw_len => raw,
            Ok(raw) => {
                send_error(
                    stream,
                    codes::PROTOCOL,
                    format!("compressed CTT declared {raw_len} bytes, got {}", raw.len()),
                );
                return Err(NetError::Protocol("compressed CTT length mismatch".into()));
            }
            Err(e) => {
                send_error(stream, codes::PROTOCOL, format!("undecodable deflate: {e}"));
                return Err(NetError::Protocol(format!("undecodable deflate: {e}")));
            }
        },
        f => {
            send_error(
                stream,
                codes::PROTOCOL,
                format!("expected RankCtt, got {}", f.name()),
            );
            return Err(NetError::Protocol(format!("unexpected {}", f.name())));
        }
    };
    let ctt = match Ctt::from_bytes(&bytes) {
        Ok(c) => c,
        Err(e) => {
            send_error(stream, codes::PROTOCOL, format!("undecodable CTT: {e}"));
            return Err(NetError::Protocol(format!("undecodable CTT: {e}")));
        }
    };
    if ctt.rank != rank {
        send_error(
            stream,
            codes::BAD_RANK,
            format!("Hello said rank {rank}, CTT says {}", ctt.rank),
        );
        return Err(NetError::Protocol("rank mismatch".into()));
    }
    let ranks_done = merge_in(state, ctt, None, cfg.keep_rank_ctts);
    write_frame(stream, &Frame::FinAck { ranks_done })?;
    stream.shutdown();
    Ok(())
}

/// Fold one finished rank CTT into the incremental binomial merge.
/// First-completion-wins: duplicates are acknowledged but discarded.
fn merge_in(state: &State, ctt: Ctt, stats: Option<cypress_core::SessionStats>, keep: bool) -> u32 {
    let mut g = state.inner.lock().unwrap();
    let (newly_merged, received, complete) = {
        let m = g.merger.as_mut().expect("merger installed at Hello");
        let t0 = Instant::now();
        let newly = m.add(&ctt);
        hists().merge_step_ns.record(t0.elapsed().as_nanos() as u64);
        (newly, m.received(), m.is_complete())
    };
    if newly_merged {
        let entry = g
            .clients
            .entry(ctt.rank)
            .or_insert((ClientState::Merged, 0));
        entry.0 = ClientState::Merged;
        if entry.1 == 0 {
            // Ctt-mode ranks stream no Events frames; credit the record
            // count so per-client telemetry is nonzero either way.
            entry.1 = match &stats {
                Some(st) => st.mpi_events,
                None => ctt.op_count(),
            };
        }
        match stats {
            Some(st) => {
                g.total_events += st.mpi_events;
                g.raw_mpi_bytes += st.raw_mpi_bytes;
                g.peak_ctt_bytes = g.peak_ctt_bytes.max(st.peak_ctt_bytes);
            }
            None => g.total_events += ctt.op_count(),
        }
        if keep {
            g.rank_ctts.push(ctt);
        }
        if cypress_obs::enabled() {
            obs().sessions_completed.inc();
            obs().ranks_merged.set_max(received as i64);
        }
    }
    if complete {
        g.done = true;
        drop(g);
        state.cv.notify_all();
    }
    received
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{submit_ctt, submit_stream, ClientConfig};
    use cypress_core::{compress_trace, merge_all};
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};
    use cypress_trace::codec::Codec;
    use cypress_trace::RawTrace;

    const SRC: &str = r#"fn main() {
        let r = rank(); let s = size();
        for k in 0..8 {
            if r < s - 1 { send(r + 1, 2048, 0); }
            if r > 0 { recv(r - 1, 2048, 0); }
            allreduce(16);
        }
    }"#;

    fn traces(nprocs: u32) -> (cypress_cst::StaticInfo, Vec<RawTrace>) {
        let p = parse(SRC).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        (info, traces)
    }

    fn serve_in_background(
        cfg: CollectorConfig,
    ) -> (
        Addr,
        std::thread::JoinHandle<Result<CollectedJob, NetError>>,
    ) {
        let collector = Collector::bind(&Addr::parse("127.0.0.1:0").unwrap()).unwrap();
        let addr = collector.local_addr().unwrap();
        let handle = std::thread::spawn(move || collector.run(&cfg));
        (addr, handle)
    }

    #[test]
    fn loopback_stream_collection_matches_local_merge() {
        let nprocs = 6;
        let (info, traces) = traces(nprocs);
        let cst_text = info.cst.to_text();
        let local: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        let want = merge_all(&local).to_bytes();

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 3,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let cfg = ClientConfig::default();
        std::thread::scope(|scope| {
            // Submit in reverse rank order: arrival order must not matter.
            for t in traces.iter().rev() {
                let (addr, cfg, cst_text) = (&addr, &cfg, &cst_text);
                scope.spawn(move || {
                    let out = submit_stream(addr, cfg, t.rank, t.nprocs, cst_text, |sink| {
                        for ev in &t.events {
                            sink.event(ev.clone());
                        }
                        Ok(t.app_time)
                    })
                    .unwrap();
                    assert!(!out.already_done);
                    assert_eq!(out.events_sent, t.events.len() as u64);
                });
            }
        });
        let job = server.join().unwrap().unwrap();
        assert_eq!(job.nprocs, nprocs);
        assert_eq!(job.merged.to_bytes(), want);
        assert_eq!(job.rank_ctts.len(), nprocs as usize);
        for (ctt, local) in job.rank_ctts.iter().zip(&local) {
            assert_eq!(ctt, local, "rank {} ctt differs", ctt.rank);
        }
        assert_eq!(
            job.total_events,
            traces.iter().map(|t| t.mpi_count() as u64).sum::<u64>()
        );
    }

    #[test]
    fn loopback_ctt_submission_matches_local_merge() {
        let nprocs = 4;
        let (info, traces) = traces(nprocs);
        let cst_text = info.cst.to_text();
        let local: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        let want = merge_all(&local).to_bytes();

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 2,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let cfg = ClientConfig::default();
        for ctt in local.iter().rev() {
            submit_ctt(&addr, &cfg, ctt, &cst_text).unwrap();
        }
        let job = server.join().unwrap().unwrap();
        assert_eq!(job.merged.to_bytes(), want);
        assert_eq!(job.raw_mpi_bytes, 0);
    }

    #[test]
    fn ctt_submission_levels_and_raw_agree() {
        let nprocs = 3;
        let (info, traces) = traces(nprocs);
        let cst_text = info.cst.to_text();
        let local: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        let want = merge_all(&local).to_bytes();

        for level in [
            None,
            Some(cypress_deflate::Level::Fast),
            Some(cypress_deflate::Level::Best),
        ] {
            let (addr, server) = serve_in_background(CollectorConfig {
                workers: 2,
                deadline: Some(Duration::from_secs(60)),
                ..CollectorConfig::default()
            });
            let cfg = ClientConfig {
                ctt_level: level,
                ..ClientConfig::default()
            };
            for ctt in &local {
                submit_ctt(&addr, &cfg, ctt, &cst_text).unwrap();
            }
            let job = server.join().unwrap().unwrap();
            assert_eq!(job.merged.to_bytes(), want, "level {level:?}");
        }
    }

    #[test]
    fn v1_client_negotiates_down_and_submits_raw() {
        let (info, traces) = traces(1);
        let cst_text = info.cst.to_text();
        let ctt = compress_trace(&info.cst, &traces[0], &CompressConfig::default());

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 1,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        // Hand-rolled v1 client: the collector must answer with version 1
        // and accept the raw RankCtt frame.
        let mut stream = crate::transport::Stream::connect(&addr, Duration::from_secs(5)).unwrap();
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: 1,
                rank: 0,
                nprocs: 1,
                mode: SubmitMode::Ctt,
                cst_text: cst_text.clone(),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap() {
            Frame::HelloAck { version, .. } => assert_eq!(version, 1),
            f => panic!("expected HelloAck, got {}", f.name()),
        }
        write_frame(
            &mut stream,
            &Frame::RankCtt {
                bytes: ctt.to_bytes(),
            },
        )
        .unwrap();
        assert!(matches!(
            read_frame(&mut stream).unwrap(),
            Frame::FinAck { ranks_done: 1 }
        ));
        let job = server.join().unwrap().unwrap();
        assert_eq!(job.merged.to_bytes(), merge_all(&[ctt]).to_bytes());
    }

    #[test]
    fn corrupt_compressed_ctt_is_rejected() {
        let (info, traces) = traces(1);
        let cst_text = info.cst.to_text();
        let ctt = compress_trace(&info.cst, &traces[0], &CompressConfig::default());
        let raw = ctt.to_bytes();

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 1,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let mut stream = crate::transport::Stream::connect(&addr, Duration::from_secs(5)).unwrap();
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: 2,
                rank: 0,
                nprocs: 1,
                mode: SubmitMode::Ctt,
                cst_text: cst_text.clone(),
            },
        )
        .unwrap();
        let _ack = read_frame(&mut stream).unwrap();
        // Declare the wrong raw length; the collector must reject before
        // decoding the CTT.
        write_frame(
            &mut stream,
            &Frame::RankCttZ {
                raw_len: raw.len() as u64 + 1,
                bytes: cypress_deflate::deflate(&raw, cypress_deflate::Level::Fast),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, codes::PROTOCOL),
            f => panic!("expected Error, got {}", f.name()),
        }
        // Finish the job properly so the server exits.
        submit_ctt(&addr, &ClientConfig::default(), &ctt, &cst_text).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn deadline_reports_missing_ranks() {
        let (info, traces) = traces(4);
        let cst_text = info.cst.to_text();
        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 2,
            deadline: Some(Duration::from_millis(300)),
            ..CollectorConfig::default()
        });
        // Submit only rank 2; the run must fail naming the other three.
        let t = &traces[2];
        submit_stream(
            &addr,
            &ClientConfig::default(),
            t.rank,
            t.nprocs,
            &cst_text,
            |sink| {
                for ev in &t.events {
                    sink.event(ev.clone());
                }
                Ok(t.app_time)
            },
        )
        .unwrap();
        let err = server.join().unwrap().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("deadline"), "{msg}");
        for r in ["0", "1", "3"] {
            assert!(msg.contains(r), "missing rank {r} not named: {msg}");
        }
    }

    #[test]
    fn stats_endpoint_reports_live_collection() {
        let nprocs = 4u32;
        let (info, traces) = traces(nprocs);
        let cst_text = info.cst.to_text();

        let mut collector = Collector::bind(&Addr::parse("127.0.0.1:0").unwrap()).unwrap();
        let addr = collector.local_addr().unwrap();
        let stats_addr = collector
            .bind_stats(&Addr::parse("127.0.0.1:0").unwrap())
            .unwrap();
        let cfg = CollectorConfig {
            workers: 2,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        };
        let server = std::thread::spawn(move || collector.run(&cfg));

        // Before any client: an empty but well-formed snapshot.
        let s0 = crate::stats::fetch_stats(&stats_addr, Duration::from_secs(5)).unwrap();
        assert_eq!(s0.version, STATS_VERSION);
        assert_eq!(s0.nprocs, 0);
        assert_eq!(s0.ranks_done, 0);
        assert!(s0.clients.is_empty());

        let ccfg = ClientConfig::default();
        let submit = |t: &cypress_trace::RawTrace| {
            submit_stream(&addr, &ccfg, t.rank, t.nprocs, &cst_text, |sink| {
                for ev in &t.events {
                    sink.event(ev.clone());
                }
                Ok(t.app_time)
            })
            .unwrap();
        };
        // Submit ranks 0..2 in order; FinAck means each is merged, so the
        // next snapshot is deterministic.
        for t in traces.iter().take(nprocs as usize - 1) {
            submit(t);
        }
        let s1 = crate::stats::fetch_stats(&stats_addr, Duration::from_secs(5)).unwrap();
        assert_eq!(s1.nprocs, nprocs);
        assert_eq!(s1.ranks_done, nprocs - 1);
        assert_eq!(s1.clients.len(), nprocs as usize - 1);
        for (c, t) in s1.clients.iter().zip(&traces) {
            assert_eq!(c.rank, t.rank);
            assert_eq!(c.state, ClientState::Merged);
            assert_eq!(c.events, t.events.len() as u64, "rank {}", c.rank);
        }
        assert!(s1.events_total > 0);
        assert!(s1.uptime_ns > 0);
        // Ranks {0,1,2} of 4: buddy block [0,1] plus singleton [2].
        assert_eq!(s1.merge_depth, 1);
        assert_eq!(s1.resident_blocks, 2);
        for name in ["batch_events", "merge_step_ns"] {
            let q = s1
                .quantiles
                .iter()
                .find(|q| q.name == name)
                .unwrap_or_else(|| panic!("missing quantile row {name}"));
            assert!(q.count > 0);
        }

        // Completing the job shuts the stats loop down with the collector.
        submit(&traces[nprocs as usize - 1]);
        let job = server.join().unwrap().unwrap();
        assert_eq!(job.nprocs, nprocs);
        assert!(
            crate::stats::fetch_stats(&stats_addr, Duration::from_millis(500)).is_err(),
            "stats endpoint must die with the collection"
        );
    }

    #[test]
    fn cst_mismatch_is_rejected() {
        let (info, traces) = traces(2);
        let cst_text = info.cst.to_text();
        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 2,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let cfg = ClientConfig {
            attempts: 1,
            ..ClientConfig::default()
        };
        // First client opens the job with the real CST.
        let t0 = &traces[0];
        submit_stream(&addr, &cfg, 0, 2, &cst_text, |sink| {
            for ev in &t0.events {
                sink.event(ev.clone());
            }
            Ok(t0.app_time)
        })
        .unwrap();
        // Second client lies about the CST and must be turned away.
        let other = parse("fn main() { barrier(); }").unwrap();
        let other_text = analyze_program(&other).cst.to_text();
        let err = submit_stream(&addr, &cfg, 1, 2, &other_text, |_| Ok(0)).unwrap_err();
        match err {
            NetError::Remote { code, .. } => assert_eq!(code, codes::CST_MISMATCH),
            e => panic!("expected CST_MISMATCH, got {e}"),
        }
        // Finish the job so the server thread exits cleanly.
        let t1 = &traces[1];
        submit_stream(&addr, &cfg, 1, 2, &cst_text, |sink| {
            for ev in &t1.events {
                sink.event(ev.clone());
            }
            Ok(t1.app_time)
        })
        .unwrap();
        server.join().unwrap().unwrap();
    }
}
