//! The collector daemon.
//!
//! One [`Collector`] gathers a whole job: it accepts many concurrent
//! clients (TCP or Unix sockets), feeds each stream-mode client into its
//! own [`CompressSession`] so raw events never accumulate server-side, and
//! reduces finished rank CTTs through a [`BinomialMerger`] **as they
//! arrive** — no barrier on the full rank set. Connections are handled by
//! the `runtime` work-stealing pool; the accept loop is non-blocking and
//! queues sockets for the workers, counting backpressure stalls when every
//! worker is busy.
//!
//! Failure model: a client that disconnects (or corrupts a frame)
//! mid-stream loses only its own partial session — the collector discards
//! it and the retried client re-streams from scratch. A rank submitted
//! twice (a retry whose first attempt actually landed) is acknowledged and
//! discarded; [`BinomialMerger`] is first-completion-wins, so a
//! killed-and-retried client can never corrupt the merged job.

use crate::proto::{
    codes, read_frame, send_error, write_frame, Frame, SubmitMode, PROTO_VERSION, PROTO_VERSION_MIN,
};
use crate::transport::{Addr, Listener, Stream};
use crate::{obs, NetError};
use cypress_core::{
    BinomialMerger, CompressConfig, CompressSession, Ctt, MergedCtt, SessionConfig,
};
use cypress_cst::Cst;
use cypress_deflate::crc32;
use cypress_obs::{obs_log, Level};
use cypress_runtime::run_ranks;
use cypress_trace::codec::Codec;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Collector knobs.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Connection-handling workers (0 = one per core, capped at 8).
    pub workers: usize,
    /// Per-request read/write timeout on client sockets.
    pub io_timeout: Duration,
    /// Keep every rank's CTT (exact per-rank timing in queries and
    /// `--per-rank` containers) in addition to the incremental merge.
    pub keep_rank_ctts: bool,
    /// Overall wall-clock budget; when it expires with ranks missing the
    /// run fails listing them instead of hanging forever.
    pub deadline: Option<Duration>,
    /// Compression knobs for server-side sessions (stream mode).
    pub compress: CompressConfig,
    /// Session knobs for server-side sessions (stream mode).
    pub session: SessionConfig,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            workers: 0,
            io_timeout: Duration::from_secs(10),
            keep_rank_ctts: true,
            deadline: None,
            compress: CompressConfig::default(),
            session: SessionConfig::default(),
        }
    }
}

/// Everything a finished collection produced — the networked counterpart
/// of the local pipeline's `CompressedJob`.
#[derive(Debug)]
pub struct CollectedJob {
    pub nprocs: u32,
    pub cst: Cst,
    /// Canonical CST text as received in the first `Hello` (persisted
    /// verbatim into containers).
    pub cst_text: String,
    /// The binomial-merged whole-job tree — byte-identical to a local
    /// `merge_all` over the same rank CTTs.
    pub merged: MergedCtt,
    /// Per-rank CTTs in rank order (empty when
    /// [`CollectorConfig::keep_rank_ctts`] is off).
    pub rank_ctts: Vec<Ctt>,
    /// Total MPI events across ranks (session accounting for stream mode,
    /// record counts for ctt mode — identical values).
    pub total_events: u64,
    /// Raw serialized size of the MPI records before compression (stream
    /// mode only; 0 for ctt-mode ranks).
    pub raw_mpi_bytes: u64,
    /// Largest live server-side CTT footprint any session reached.
    pub peak_ctt_bytes: usize,
}

/// Job identity, fixed by the first client's `Hello`.
struct JobInfo {
    nprocs: u32,
    cst_text: String,
    cst_crc: u32,
    cst: Cst,
}

struct Inner {
    queue: VecDeque<Stream>,
    merger: Option<BinomialMerger>,
    rank_ctts: Vec<Ctt>,
    total_events: u64,
    raw_mpi_bytes: u64,
    peak_ctt_bytes: usize,
    done: bool,
    fatal: Option<String>,
}

struct State {
    job: OnceLock<JobInfo>,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl State {
    fn stop_requested(&self) -> bool {
        let g = self.inner.lock().unwrap();
        g.done || g.fatal.is_some()
    }
}

/// A bound collector. Binding is split from running so callers (tests, the
/// bench, `cypress serve` with port 0) can learn the resolved address
/// before clients start.
pub struct Collector {
    listener: Listener,
}

impl Collector {
    pub fn bind(addr: &Addr) -> Result<Collector, NetError> {
        Ok(Collector {
            listener: Listener::bind(addr)?,
        })
    }

    /// The resolved listen address (ephemeral TCP ports filled in).
    pub fn local_addr(&self) -> Result<Addr, NetError> {
        self.listener.local_addr()
    }

    /// Serve until every rank of the job (sized by the first `Hello`) is
    /// merged, then return the collected job. Blocks the calling thread;
    /// connection handling runs on the work-stealing pool.
    pub fn run(self, cfg: &CollectorConfig) -> Result<CollectedJob, NetError> {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8)
        } else {
            cfg.workers
        };
        let state = State {
            job: OnceLock::new(),
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                merger: None,
                rank_ctts: Vec::new(),
                total_events: 0,
                raw_mpi_bytes: 0,
                peak_ctt_bytes: 0,
                done: false,
                fatal: None,
            }),
            cv: Condvar::new(),
        };
        self.listener.set_nonblocking(true)?;
        obs_log!(
            Level::Info,
            "net",
            "collector listening on {} with {workers} workers",
            self.listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_default()
        );
        std::thread::scope(|scope| {
            let accept = scope.spawn(|| accept_loop(&self.listener, &state, cfg, workers));
            run_ranks(workers as u32, workers, |_| worker_loop(&state, cfg));
            accept.join().expect("accept loop panicked");
        });

        let inner = state.inner.into_inner().unwrap();
        if let Some(f) = inner.fatal {
            return Err(NetError::Collect(f));
        }
        let job = state
            .job
            .into_inner()
            .ok_or_else(|| NetError::Collect("no client ever connected".into()))?;
        let merger = inner
            .merger
            .ok_or_else(|| NetError::Collect("no rank completed".into()))?;
        let merged = merger.finish();
        let mut rank_ctts = inner.rank_ctts;
        rank_ctts.sort_by_key(|c| c.rank);
        Ok(CollectedJob {
            nprocs: job.nprocs,
            cst: job.cst,
            cst_text: job.cst_text,
            merged,
            rank_ctts,
            total_events: inner.total_events,
            raw_mpi_bytes: inner.raw_mpi_bytes,
            peak_ctt_bytes: inner.peak_ctt_bytes,
        })
    }
}

fn accept_loop(listener: &Listener, state: &State, cfg: &CollectorConfig, workers: usize) {
    let started = Instant::now();
    loop {
        if state.stop_requested() {
            return;
        }
        if let Some(deadline) = cfg.deadline {
            if started.elapsed() > deadline {
                let mut g = state.inner.lock().unwrap();
                if !g.done {
                    let missing = g
                        .merger
                        .as_ref()
                        .map(|m| format!("{:?}", m.missing_ranks()))
                        .unwrap_or_else(|| "all".into());
                    g.fatal = Some(format!(
                        "deadline {deadline:?} exceeded with ranks missing: {missing}"
                    ));
                }
                state.cv.notify_all();
                return;
            }
        }
        match listener.accept() {
            Ok(stream) => {
                if cypress_obs::enabled() {
                    obs().connections.inc();
                }
                let mut g = state.inner.lock().unwrap();
                if g.queue.len() >= workers && cypress_obs::enabled() {
                    obs().backpressure_stalls.inc();
                }
                g.queue.push_back(stream);
                drop(g);
                state.cv.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                let mut g = state.inner.lock().unwrap();
                g.fatal = Some(format!("listener failed: {e}"));
                drop(g);
                state.cv.notify_all();
                return;
            }
        }
    }
}

fn worker_loop(state: &State, cfg: &CollectorConfig) {
    loop {
        let stream = {
            let mut g = state.inner.lock().unwrap();
            loop {
                if g.done || g.fatal.is_some() {
                    return;
                }
                if let Some(s) = g.queue.pop_front() {
                    break s;
                }
                let (g2, _) = state.cv.wait_timeout(g, Duration::from_millis(50)).unwrap();
                g = g2;
            }
        };
        let mut stream = stream;
        if let Err(e) = handle_connection(state, cfg, &mut stream) {
            obs_log!(Level::Warn, "net", "connection dropped: {e}");
        }
    }
}

fn handle_connection(
    state: &State,
    cfg: &CollectorConfig,
    stream: &mut Stream,
) -> Result<(), NetError> {
    stream.set_io_timeout(cfg.io_timeout)?;
    let frame = read_frame(stream)?;
    let Frame::Hello {
        version,
        rank,
        nprocs,
        mode,
        cst_text,
    } = frame
    else {
        send_error(stream, codes::PROTOCOL, "first frame must be Hello");
        return Err(NetError::Protocol(format!(
            "first frame was {}",
            frame.name()
        )));
    };
    if version < PROTO_VERSION_MIN {
        send_error(
            stream,
            codes::VERSION,
            format!("version {version} below minimum {PROTO_VERSION_MIN}"),
        );
        return Err(NetError::Version { theirs: version });
    }
    let negotiated = version.min(PROTO_VERSION);
    if nprocs == 0 || rank >= nprocs {
        send_error(
            stream,
            codes::BAD_RANK,
            format!("rank {rank} out of range for {nprocs} procs"),
        );
        return Err(NetError::Protocol(format!("bad rank {rank}/{nprocs}")));
    }

    // First Hello fixes the job: CST, job size, and the merger. Later
    // clients must match it exactly (CRC over the canonical CST text).
    let client_crc = crc32(cst_text.as_bytes());
    let job = match state.job.get() {
        Some(j) => j,
        None => {
            match Cst::from_text(&cst_text) {
                Ok(cst) => {
                    let info = JobInfo {
                        nprocs,
                        cst_crc: client_crc,
                        cst_text,
                        cst,
                    };
                    // Another worker may have won the race; either way the
                    // stored job is authoritative and validated below.
                    let _ = state.job.set(info);
                }
                Err(e) => {
                    send_error(stream, codes::INTERNAL, format!("unparseable CST: {e}"));
                    return Err(NetError::Protocol(format!("unparseable CST: {e}")));
                }
            }
            state.job.get().expect("just set")
        }
    };
    if job.nprocs != nprocs {
        send_error(
            stream,
            codes::BAD_RANK,
            format!("job has {} procs, client claims {nprocs}", job.nprocs),
        );
        return Err(NetError::Protocol("job size mismatch".into()));
    }
    if job.cst_crc != client_crc {
        send_error(
            stream,
            codes::CST_MISMATCH,
            "client CST differs from the CST this job was opened with",
        );
        return Err(NetError::Protocol("cst mismatch".into()));
    }

    {
        let mut g = state.inner.lock().unwrap();
        if g.merger.is_none() {
            g.merger = Some(BinomialMerger::new(job.nprocs));
        }
        if g.merger.as_ref().expect("just set").has_rank(rank) {
            drop(g);
            write_frame(
                stream,
                &Frame::HelloAck {
                    version: negotiated,
                    already_done: true,
                },
            )?;
            stream.shutdown();
            return Ok(());
        }
    }
    write_frame(
        stream,
        &Frame::HelloAck {
            version: negotiated,
            already_done: false,
        },
    )?;

    match mode {
        SubmitMode::Stream => handle_stream(state, cfg, stream, job, rank),
        SubmitMode::Ctt => handle_ctt(state, cfg, stream, rank),
    }
}

fn handle_stream(
    state: &State,
    cfg: &CollectorConfig,
    stream: &mut Stream,
    job: &JobInfo,
    rank: u32,
) -> Result<(), NetError> {
    if cypress_obs::enabled() {
        obs().sessions_started.inc();
    }
    let mut session = CompressSession::new(
        &job.cst,
        rank,
        job.nprocs,
        cfg.compress.clone(),
        cfg.session.clone(),
    );
    let mut count: u64 = 0;
    let app_time = loop {
        let frame = match read_frame(stream) {
            Ok(f) => f,
            Err(e) => {
                // Disconnect or corruption mid-stream: drop the partial
                // session; the client will retry from scratch.
                if cypress_obs::enabled() {
                    obs().sessions_aborted.inc();
                }
                return Err(e);
            }
        };
        match frame {
            Frame::Events { events } => {
                count += events.len() as u64;
                session.push_batch(&events);
            }
            Frame::Finish {
                app_time,
                event_count,
            } => {
                if event_count != count {
                    if cypress_obs::enabled() {
                        obs().sessions_aborted.inc();
                    }
                    send_error(
                        stream,
                        codes::PROTOCOL,
                        format!("client sent {event_count} events, collector saw {count}"),
                    );
                    return Err(NetError::Protocol("event count mismatch".into()));
                }
                break app_time;
            }
            f => {
                if cypress_obs::enabled() {
                    obs().sessions_aborted.inc();
                }
                send_error(
                    stream,
                    codes::PROTOCOL,
                    format!("unexpected {} during event stream", f.name()),
                );
                return Err(NetError::Protocol(format!("unexpected {}", f.name())));
            }
        }
    };
    let (ctt, stats) = session.finish(app_time);
    let ranks_done = merge_in(state, ctt, Some(stats), cfg.keep_rank_ctts);
    write_frame(stream, &Frame::FinAck { ranks_done })?;
    stream.shutdown();
    Ok(())
}

fn handle_ctt(
    state: &State,
    cfg: &CollectorConfig,
    stream: &mut Stream,
    rank: u32,
) -> Result<(), NetError> {
    let frame = read_frame(stream)?;
    let bytes = match frame {
        Frame::RankCtt { bytes } => bytes,
        Frame::RankCttZ { raw_len, bytes } => match cypress_deflate::inflate(&bytes) {
            Ok(raw) if raw.len() as u64 == raw_len => raw,
            Ok(raw) => {
                send_error(
                    stream,
                    codes::PROTOCOL,
                    format!("compressed CTT declared {raw_len} bytes, got {}", raw.len()),
                );
                return Err(NetError::Protocol("compressed CTT length mismatch".into()));
            }
            Err(e) => {
                send_error(stream, codes::PROTOCOL, format!("undecodable deflate: {e}"));
                return Err(NetError::Protocol(format!("undecodable deflate: {e}")));
            }
        },
        f => {
            send_error(
                stream,
                codes::PROTOCOL,
                format!("expected RankCtt, got {}", f.name()),
            );
            return Err(NetError::Protocol(format!("unexpected {}", f.name())));
        }
    };
    let ctt = match Ctt::from_bytes(&bytes) {
        Ok(c) => c,
        Err(e) => {
            send_error(stream, codes::PROTOCOL, format!("undecodable CTT: {e}"));
            return Err(NetError::Protocol(format!("undecodable CTT: {e}")));
        }
    };
    if ctt.rank != rank {
        send_error(
            stream,
            codes::BAD_RANK,
            format!("Hello said rank {rank}, CTT says {}", ctt.rank),
        );
        return Err(NetError::Protocol("rank mismatch".into()));
    }
    let ranks_done = merge_in(state, ctt, None, cfg.keep_rank_ctts);
    write_frame(stream, &Frame::FinAck { ranks_done })?;
    stream.shutdown();
    Ok(())
}

/// Fold one finished rank CTT into the incremental binomial merge.
/// First-completion-wins: duplicates are acknowledged but discarded.
fn merge_in(state: &State, ctt: Ctt, stats: Option<cypress_core::SessionStats>, keep: bool) -> u32 {
    let mut g = state.inner.lock().unwrap();
    let (newly_merged, received, complete) = {
        let m = g.merger.as_mut().expect("merger installed at Hello");
        let newly = m.add(&ctt);
        (newly, m.received(), m.is_complete())
    };
    if newly_merged {
        match stats {
            Some(st) => {
                g.total_events += st.mpi_events;
                g.raw_mpi_bytes += st.raw_mpi_bytes;
                g.peak_ctt_bytes = g.peak_ctt_bytes.max(st.peak_ctt_bytes);
            }
            None => g.total_events += ctt.op_count(),
        }
        if keep {
            g.rank_ctts.push(ctt);
        }
        if cypress_obs::enabled() {
            obs().sessions_completed.inc();
            obs().ranks_merged.set_max(received as i64);
        }
    }
    if complete {
        g.done = true;
        drop(g);
        state.cv.notify_all();
    }
    received
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{submit_ctt, submit_stream, ClientConfig};
    use cypress_core::{compress_trace, merge_all};
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};
    use cypress_trace::codec::Codec;
    use cypress_trace::RawTrace;

    const SRC: &str = r#"fn main() {
        let r = rank(); let s = size();
        for k in 0..8 {
            if r < s - 1 { send(r + 1, 2048, 0); }
            if r > 0 { recv(r - 1, 2048, 0); }
            allreduce(16);
        }
    }"#;

    fn traces(nprocs: u32) -> (cypress_cst::StaticInfo, Vec<RawTrace>) {
        let p = parse(SRC).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        (info, traces)
    }

    fn serve_in_background(
        cfg: CollectorConfig,
    ) -> (
        Addr,
        std::thread::JoinHandle<Result<CollectedJob, NetError>>,
    ) {
        let collector = Collector::bind(&Addr::parse("127.0.0.1:0").unwrap()).unwrap();
        let addr = collector.local_addr().unwrap();
        let handle = std::thread::spawn(move || collector.run(&cfg));
        (addr, handle)
    }

    #[test]
    fn loopback_stream_collection_matches_local_merge() {
        let nprocs = 6;
        let (info, traces) = traces(nprocs);
        let cst_text = info.cst.to_text();
        let local: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        let want = merge_all(&local).to_bytes();

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 3,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let cfg = ClientConfig::default();
        std::thread::scope(|scope| {
            // Submit in reverse rank order: arrival order must not matter.
            for t in traces.iter().rev() {
                let (addr, cfg, cst_text) = (&addr, &cfg, &cst_text);
                scope.spawn(move || {
                    let out = submit_stream(addr, cfg, t.rank, t.nprocs, cst_text, |sink| {
                        for ev in &t.events {
                            sink.event(ev.clone());
                        }
                        Ok(t.app_time)
                    })
                    .unwrap();
                    assert!(!out.already_done);
                    assert_eq!(out.events_sent, t.events.len() as u64);
                });
            }
        });
        let job = server.join().unwrap().unwrap();
        assert_eq!(job.nprocs, nprocs);
        assert_eq!(job.merged.to_bytes(), want);
        assert_eq!(job.rank_ctts.len(), nprocs as usize);
        for (ctt, local) in job.rank_ctts.iter().zip(&local) {
            assert_eq!(ctt, local, "rank {} ctt differs", ctt.rank);
        }
        assert_eq!(
            job.total_events,
            traces.iter().map(|t| t.mpi_count() as u64).sum::<u64>()
        );
    }

    #[test]
    fn loopback_ctt_submission_matches_local_merge() {
        let nprocs = 4;
        let (info, traces) = traces(nprocs);
        let cst_text = info.cst.to_text();
        let local: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        let want = merge_all(&local).to_bytes();

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 2,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let cfg = ClientConfig::default();
        for ctt in local.iter().rev() {
            submit_ctt(&addr, &cfg, ctt, &cst_text).unwrap();
        }
        let job = server.join().unwrap().unwrap();
        assert_eq!(job.merged.to_bytes(), want);
        assert_eq!(job.raw_mpi_bytes, 0);
    }

    #[test]
    fn ctt_submission_levels_and_raw_agree() {
        let nprocs = 3;
        let (info, traces) = traces(nprocs);
        let cst_text = info.cst.to_text();
        let local: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        let want = merge_all(&local).to_bytes();

        for level in [
            None,
            Some(cypress_deflate::Level::Fast),
            Some(cypress_deflate::Level::Best),
        ] {
            let (addr, server) = serve_in_background(CollectorConfig {
                workers: 2,
                deadline: Some(Duration::from_secs(60)),
                ..CollectorConfig::default()
            });
            let cfg = ClientConfig {
                ctt_level: level,
                ..ClientConfig::default()
            };
            for ctt in &local {
                submit_ctt(&addr, &cfg, ctt, &cst_text).unwrap();
            }
            let job = server.join().unwrap().unwrap();
            assert_eq!(job.merged.to_bytes(), want, "level {level:?}");
        }
    }

    #[test]
    fn v1_client_negotiates_down_and_submits_raw() {
        let (info, traces) = traces(1);
        let cst_text = info.cst.to_text();
        let ctt = compress_trace(&info.cst, &traces[0], &CompressConfig::default());

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 1,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        // Hand-rolled v1 client: the collector must answer with version 1
        // and accept the raw RankCtt frame.
        let mut stream = crate::transport::Stream::connect(&addr, Duration::from_secs(5)).unwrap();
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: 1,
                rank: 0,
                nprocs: 1,
                mode: SubmitMode::Ctt,
                cst_text: cst_text.clone(),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap() {
            Frame::HelloAck { version, .. } => assert_eq!(version, 1),
            f => panic!("expected HelloAck, got {}", f.name()),
        }
        write_frame(
            &mut stream,
            &Frame::RankCtt {
                bytes: ctt.to_bytes(),
            },
        )
        .unwrap();
        assert!(matches!(
            read_frame(&mut stream).unwrap(),
            Frame::FinAck { ranks_done: 1 }
        ));
        let job = server.join().unwrap().unwrap();
        assert_eq!(job.merged.to_bytes(), merge_all(&[ctt]).to_bytes());
    }

    #[test]
    fn corrupt_compressed_ctt_is_rejected() {
        let (info, traces) = traces(1);
        let cst_text = info.cst.to_text();
        let ctt = compress_trace(&info.cst, &traces[0], &CompressConfig::default());
        let raw = ctt.to_bytes();

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 1,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let mut stream = crate::transport::Stream::connect(&addr, Duration::from_secs(5)).unwrap();
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: 2,
                rank: 0,
                nprocs: 1,
                mode: SubmitMode::Ctt,
                cst_text: cst_text.clone(),
            },
        )
        .unwrap();
        let _ack = read_frame(&mut stream).unwrap();
        // Declare the wrong raw length; the collector must reject before
        // decoding the CTT.
        write_frame(
            &mut stream,
            &Frame::RankCttZ {
                raw_len: raw.len() as u64 + 1,
                bytes: cypress_deflate::deflate(&raw, cypress_deflate::Level::Fast),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, codes::PROTOCOL),
            f => panic!("expected Error, got {}", f.name()),
        }
        // Finish the job properly so the server exits.
        submit_ctt(&addr, &ClientConfig::default(), &ctt, &cst_text).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn deadline_reports_missing_ranks() {
        let (info, traces) = traces(4);
        let cst_text = info.cst.to_text();
        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 2,
            deadline: Some(Duration::from_millis(300)),
            ..CollectorConfig::default()
        });
        // Submit only rank 2; the run must fail naming the other three.
        let t = &traces[2];
        submit_stream(
            &addr,
            &ClientConfig::default(),
            t.rank,
            t.nprocs,
            &cst_text,
            |sink| {
                for ev in &t.events {
                    sink.event(ev.clone());
                }
                Ok(t.app_time)
            },
        )
        .unwrap();
        let err = server.join().unwrap().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("deadline"), "{msg}");
        for r in ["0", "1", "3"] {
            assert!(msg.contains(r), "missing rank {r} not named: {msg}");
        }
    }

    #[test]
    fn cst_mismatch_is_rejected() {
        let (info, traces) = traces(2);
        let cst_text = info.cst.to_text();
        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 2,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let cfg = ClientConfig {
            attempts: 1,
            ..ClientConfig::default()
        };
        // First client opens the job with the real CST.
        let t0 = &traces[0];
        submit_stream(&addr, &cfg, 0, 2, &cst_text, |sink| {
            for ev in &t0.events {
                sink.event(ev.clone());
            }
            Ok(t0.app_time)
        })
        .unwrap();
        // Second client lies about the CST and must be turned away.
        let other = parse("fn main() { barrier(); }").unwrap();
        let other_text = analyze_program(&other).cst.to_text();
        let err = submit_stream(&addr, &cfg, 1, 2, &other_text, |_| Ok(0)).unwrap_err();
        match err {
            NetError::Remote { code, .. } => assert_eq!(code, codes::CST_MISMATCH),
            e => panic!("expected CST_MISMATCH, got {e}"),
        }
        // Finish the job so the server thread exits cleanly.
        let t1 = &traces[1];
        submit_stream(&addr, &cfg, 1, 2, &cst_text, |sink| {
            for ev in &t1.events {
                sink.event(ev.clone());
            }
            Ok(t1.app_time)
        })
        .unwrap();
        server.join().unwrap().unwrap();
    }
}
