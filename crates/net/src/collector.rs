//! The collector daemon.
//!
//! One [`Collector`] gathers a whole job: it accepts many concurrent
//! clients (TCP or Unix sockets), feeds each stream-mode client into its
//! own [`CompressSession`] so raw events never accumulate server-side, and
//! reduces finished rank CTTs through a [`BinomialMerger`] **as they
//! arrive** — no barrier on the full rank set.
//!
//! Connection handling is a small pool of **event loops** (see
//! [`crate::poll`]), each multiplexing many non-blocking sockets: every
//! connection owns a reusable [`FrameBuf`] rx buffer and a pending-tx
//! buffer, and a per-connection state machine ([`ConnState`]) advances on
//! whatever frames arrived. Loop 0 additionally owns the job and stats
//! listeners; accepted sockets are dealt round-robin to the loops through
//! waker-signalled mailboxes. Nothing in this crate sleeps on a timer: the
//! loops block in `poll(2)` until a socket, a peer loop, a deadline, or
//! completion wakes them.
//!
//! Two roles share the same machinery:
//!
//! - **Root** (plain `serve`): completes when all `nprocs` ranks are
//!   merged, yields the [`CollectedJob`].
//! - **Relay** ([`Collector::run_relay`], `serve --tree`): accepts only a
//!   contiguous rank shard, merges it with a *global-sized*
//!   [`BinomialMerger`], then forwards its resident buddy blocks upstream
//!   as `MergedBlockZ` frames. Because a global-sized merger's blocks are
//!   aligned on the global association tree, the root absorbing them is
//!   byte-identical to a local `merge_all` — relaying never perturbs the
//!   merge.
//!
//! Failure model: a client that disconnects (or corrupts a frame)
//! mid-stream loses only its own partial session — the collector discards
//! it and the retried client re-streams from scratch. A rank submitted
//! twice (a retry whose first attempt actually landed) is acknowledged and
//! discarded; [`BinomialMerger`] is first-completion-wins, so a
//! killed-and-retried client can never corrupt the merged job. A relay
//! retry re-forwarding blocks that already landed is absorbed the same way
//! (duplicate blocks are no-ops). A dead relay surfaces as a deadline
//! failure at the root naming the shard's missing ranks — loud, never a
//! hang.

use crate::client::ClientConfig;
use crate::poll::{PollSet, Waker};
use crate::proto::{
    codes, encode_frame_into, Frame, FrameBuf, SubmitMode, PROTO_VERSION, PROTO_VERSION_MIN,
};
use crate::stats::{ClientStat, ClientState, QuantileStat, Stats, STATS_VERSION};
use crate::transport::{Addr, Listener, Stream};
use crate::{obs, NetError};
use cypress_core::{
    BinomialMerger, CompressConfig, CompressSession, Ctt, MergedCtt, SessionConfig,
};
use cypress_cst::Cst;
use cypress_deflate::crc32;
use cypress_obs::{obs_log, Level};
use cypress_trace::codec::Codec;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Collector knobs.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Event-loop workers (0 = one per core, capped at 8). Each loop
    /// multiplexes many connections; this is parallelism for per-client
    /// compression work, not a connection limit.
    pub workers: usize,
    /// Idle timeout: a connection silent this long mid-protocol is dropped
    /// (its client retries from scratch).
    pub io_timeout: Duration,
    /// Keep every rank's CTT (exact per-rank timing in queries and
    /// `--per-rank` containers) in addition to the incremental merge.
    pub keep_rank_ctts: bool,
    /// Overall wall-clock budget; when it expires with ranks missing the
    /// run fails listing them instead of hanging forever.
    pub deadline: Option<Duration>,
    /// Compression knobs for server-side sessions (stream mode).
    pub compress: CompressConfig,
    /// Session knobs for server-side sessions (stream mode).
    pub session: SessionConfig,
    /// Serve live [`Stats`] snapshots on a second endpoint
    /// (`cypress serve --stats-addr`). `None` disables telemetry.
    /// Ephemeral-port callers (tests) should prefer
    /// [`Collector::bind_stats`], which reports the resolved address.
    pub stats_addr: Option<Addr>,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            workers: 0,
            io_timeout: Duration::from_secs(10),
            keep_rank_ctts: true,
            deadline: None,
            compress: CompressConfig::default(),
            session: SessionConfig::default(),
            stats_addr: None,
        }
    }
}

/// A mid-tier collector's configuration: accept ranks
/// `[first_rank, last_rank)` of an `nprocs`-rank job, then forward the
/// merged blocks to `upstream` with the given client retry policy.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    pub first_rank: u32,
    /// Exclusive upper bound of the shard.
    pub last_rank: u32,
    /// Global job size (the merger is global-sized so its blocks stay
    /// aligned on the whole job's buddy tree).
    pub nprocs: u32,
    /// The parent collector (root or another relay).
    pub upstream: Addr,
    /// Retry/backoff/compression policy for the upstream submission.
    pub client: ClientConfig,
    pub collector: CollectorConfig,
}

/// What a finished relay did.
#[derive(Debug, Clone, Copy)]
pub struct RelaySummary {
    /// Ranks in this relay's shard.
    pub ranks: u32,
    /// Aligned buddy blocks forwarded upstream (≤ 2·log2 P for any
    /// contiguous shard).
    pub blocks_forwarded: u32,
    /// Total MPI events the shard's clients submitted.
    pub events: u64,
}

/// Everything a finished collection produced — the networked counterpart
/// of the local pipeline's `CompressedJob`.
#[derive(Debug)]
pub struct CollectedJob {
    pub nprocs: u32,
    pub cst: Cst,
    /// Canonical CST text as received in the first `Hello` (persisted
    /// verbatim into containers).
    pub cst_text: String,
    /// The binomial-merged whole-job tree — byte-identical to a local
    /// `merge_all` over the same rank CTTs.
    pub merged: MergedCtt,
    /// Per-rank CTTs in rank order (empty when
    /// [`CollectorConfig::keep_rank_ctts`] is off, and always empty for
    /// ranks that arrived as relay blocks).
    pub rank_ctts: Vec<Ctt>,
    /// Total MPI events across ranks (session accounting for stream mode,
    /// record counts for ctt mode, relay-reported totals for blocks mode).
    pub total_events: u64,
    /// Raw serialized size of the MPI records before compression (stream
    /// mode only; 0 for ctt-mode ranks).
    pub raw_mpi_bytes: u64,
    /// Largest live server-side CTT footprint any session reached.
    pub peak_ctt_bytes: usize,
}

/// Job identity, fixed by the first client's `Hello`.
struct JobInfo {
    nprocs: u32,
    cst_text: String,
    cst_crc: u32,
    cst: Cst,
}

struct Inner {
    merger: Option<BinomialMerger>,
    rank_ctts: Vec<Ctt>,
    total_events: u64,
    raw_mpi_bytes: u64,
    peak_ctt_bytes: usize,
    done: bool,
    fatal: Option<String>,
    /// Per-rank submission state and received-event counts, feeding the
    /// live [`Stats`] snapshot. Rank-keyed: a retry of a merged rank never
    /// regresses its state.
    clients: BTreeMap<u32, (ClientState, u64)>,
}

struct State {
    job: OnceLock<JobInfo>,
    inner: Mutex<Inner>,
    started: Instant,
}

impl State {
    /// Mark a rank's submission state, never downgrading `Merged` (a late
    /// duplicate or abort of a rank that already landed changes nothing).
    fn mark_client(&self, rank: u32, st: ClientState) {
        let mut g = self.inner.lock().unwrap();
        let e = g.clients.entry(rank).or_insert((st, 0));
        if e.0 != ClientState::Merged {
            e.0 = st;
        }
    }
}

/// Which slice of the job this collector is responsible for.
#[derive(Debug, Clone, Copy)]
enum Role {
    /// The whole job.
    Root,
    /// Ranks `[first, last)` of an `nprocs`-rank job.
    Relay { first: u32, last: u32, nprocs: u32 },
}

impl Role {
    fn expected(&self, job_nprocs: u32) -> u32 {
        match self {
            Role::Root => job_nprocs,
            Role::Relay { first, last, .. } => last - first,
        }
    }
}

/// Collector-side measurements feeding the `Stats` quantile rows. These use
/// the ungated [`cypress_obs::Histogram::record`] path so the stats
/// endpoint reports real numbers whether or not the daemon runs with
/// metrics enabled.
struct CollectorHists {
    /// Events per `Events` frame (client batch sizes as received).
    batch_events: cypress_obs::Histogram,
    /// Wall time of one binomial merge step (`BinomialMerger::add`).
    merge_step_ns: cypress_obs::Histogram,
}

fn hists() -> &'static CollectorHists {
    static H: OnceLock<CollectorHists> = OnceLock::new();
    H.get_or_init(|| {
        let s = cypress_obs::scope("collector");
        CollectorHists {
            batch_events: s.histogram("batch_events", &[1, 8, 64, 512, 4096, 32768]),
            merge_step_ns: s.histogram("merge_step_ns", &cypress_obs::TIME_BOUNDS_NS),
        }
    })
}

/// Per-event-loop handoff slot: loop 0 deals accepted sockets here and
/// rings the waker so the owning loop adopts them without polling.
struct LoopShared {
    mailbox: Mutex<VecDeque<Stream>>,
    waker: Waker,
}

/// Everything an event loop needs, cheap to copy into its thread.
#[derive(Clone, Copy)]
struct Shared<'a> {
    state: &'a State,
    cfg: &'a CollectorConfig,
    role: Role,
    loops: &'a [LoopShared],
}

fn wake_all(loops: &[LoopShared]) {
    for l in loops {
        l.waker.wake();
    }
}

/// Record a collection-wide failure (first one wins) and wake every loop
/// so they drain and exit.
fn fail_collection(sh: Shared<'_>, msg: String) {
    let mut g = sh.state.inner.lock().unwrap();
    if !g.done && g.fatal.is_none() {
        g.fatal = Some(msg);
    }
    drop(g);
    wake_all(sh.loops);
}

/// Protocol position of one multiplexed connection.
enum ConnState<'a> {
    AwaitHello,
    Streaming {
        session: Box<CompressSession<'a>>,
        count: u64,
    },
    AwaitCtt,
    Blocks {
        nblocks: u64,
    },
    AwaitStatsReq,
    /// Terminal: everything left to do is flush `tx` and close.
    Done,
}

struct Conn<'a> {
    stream: Stream,
    rx: FrameBuf,
    tx: Vec<u8>,
    tx_pos: usize,
    state: ConnState<'a>,
    rank: Option<u32>,
    last_activity: Instant,
    /// Close (after flushing `tx`) instead of reading further frames.
    closing: bool,
}

impl<'a> Conn<'a> {
    fn new(stream: Stream, state: ConnState<'a>) -> Conn<'a> {
        let _ = stream.set_nonblocking(true);
        Conn {
            stream,
            rx: FrameBuf::new(),
            tx: Vec::new(),
            tx_pos: 0,
            state,
            rank: None,
            last_activity: Instant::now(),
            closing: false,
        }
    }

    fn queue(&mut self, frame: &Frame) {
        encode_frame_into(frame, &mut self.tx);
    }

    fn tx_pending(&self) -> bool {
        self.tx_pos < self.tx.len()
    }

    /// Nonblocking write of pending tx bytes; `Ok(())` on progress or
    /// `WouldBlock`, `Err` only on a real transport failure.
    fn try_flush(&mut self) -> std::io::Result<()> {
        while self.tx_pending() {
            match self.stream.write(&self.tx[self.tx_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped reading",
                    ))
                }
                Ok(n) => {
                    self.tx_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if !self.tx_pending() && !self.tx.is_empty() {
            self.tx.clear();
            self.tx_pos = 0;
        }
        Ok(())
    }

    /// Exit-time drain: switch back to blocking I/O and push out whatever
    /// acks are still queued, bounded by the io timeout.
    fn flush_blocking(mut self, io_timeout: Duration) {
        if self.tx_pending() {
            let _ = self.stream.set_nonblocking(false);
            let _ = self.stream.set_io_timeout(io_timeout);
            let _ = self.stream.write_all(&self.tx[self.tx_pos..]);
            let _ = self.stream.flush();
        }
        self.stream.shutdown();
    }

    /// Abort bookkeeping for a connection dropped mid-protocol.
    fn abort(&self, sh: Shared<'_>, why: &str) {
        if matches!(self.state, ConnState::Streaming { .. }) && cypress_obs::enabled() {
            obs().sessions_aborted.inc();
        }
        if let Some(rank) = self.rank {
            if !matches!(self.state, ConnState::Done) {
                sh.state.mark_client(rank, ClientState::Aborted);
            }
        }
        obs_log!(Level::Warn, "net", "connection dropped: {why}");
    }

    /// Reject with an `Error` frame and enter the flush-and-close path.
    fn fail(&mut self, sh: Shared<'_>, code: u16, message: String) {
        if matches!(self.state, ConnState::Streaming { .. }) && cypress_obs::enabled() {
            obs().sessions_aborted.inc();
        }
        if let Some(rank) = self.rank {
            sh.state.mark_client(rank, ClientState::Aborted);
        }
        obs_log!(
            Level::Warn,
            "net",
            "rejecting client ({}): {message}",
            codes::name(code)
        );
        self.queue(&Frame::Error { code, message });
        self.state = ConnState::Done;
        self.closing = true;
    }
}

/// A bound collector. Binding is split from running so callers (tests, the
/// bench, `cypress serve` with port 0) can learn the resolved address
/// before clients start.
pub struct Collector {
    listener: Listener,
    stats_listener: Option<Listener>,
}

impl Collector {
    pub fn bind(addr: &Addr) -> Result<Collector, NetError> {
        Ok(Collector {
            listener: Listener::bind(addr)?,
            stats_listener: None,
        })
    }

    /// The resolved listen address (ephemeral TCP ports filled in).
    pub fn local_addr(&self) -> Result<Addr, NetError> {
        self.listener.local_addr()
    }

    /// Bind the live-telemetry endpoint up front and return its resolved
    /// address. Takes precedence over [`CollectorConfig::stats_addr`];
    /// callers using ephemeral ports (tests, `--stats-addr 127.0.0.1:0`)
    /// need the resolved address before `run` blocks.
    pub fn bind_stats(&mut self, addr: &Addr) -> Result<Addr, NetError> {
        let l = Listener::bind(addr)?;
        let resolved = l.local_addr()?;
        self.stats_listener = Some(l);
        Ok(resolved)
    }

    /// Serve until every rank of the job (sized by the first `Hello`) is
    /// merged, then return the collected job. Blocks the calling thread
    /// (which runs event loop 0).
    pub fn run(mut self, cfg: &CollectorConfig) -> Result<CollectedJob, NetError> {
        if self.stats_listener.is_none() {
            if let Some(addr) = &cfg.stats_addr {
                self.bind_stats(addr)?;
            }
        }
        let (job, inner) = run_core(
            &self.listener,
            self.stats_listener.as_ref(),
            cfg,
            Role::Root,
        )?;
        let job = job.ok_or_else(|| NetError::Collect("no client ever connected".into()))?;
        let merger = inner
            .merger
            .ok_or_else(|| NetError::Collect("no rank completed".into()))?;
        let merged = merger.finish();
        let mut rank_ctts = inner.rank_ctts;
        rank_ctts.sort_by_key(|c| c.rank);
        Ok(CollectedJob {
            nprocs: job.nprocs,
            cst: job.cst,
            cst_text: job.cst_text,
            merged,
            rank_ctts,
            total_events: inner.total_events,
            raw_mpi_bytes: inner.raw_mpi_bytes,
            peak_ctt_bytes: inner.peak_ctt_bytes,
        })
    }

    /// Serve as a mid-tier relay: collect ranks
    /// `[cfg.first_rank, cfg.last_rank)`, then forward the shard's merged
    /// buddy blocks to `cfg.upstream` and return a summary. Per-rank CTT
    /// retention and the stats endpoint are root-only concerns and are
    /// disabled here regardless of `cfg.collector`.
    pub fn run_relay(self, cfg: &RelayConfig) -> Result<RelaySummary, NetError> {
        if cfg.first_rank >= cfg.last_rank || cfg.last_rank > cfg.nprocs {
            return Err(NetError::Collect(format!(
                "bad relay shard [{}, {}) for {} procs",
                cfg.first_rank, cfg.last_rank, cfg.nprocs
            )));
        }
        let mut ccfg = cfg.collector.clone();
        ccfg.keep_rank_ctts = false;
        ccfg.stats_addr = None;
        let role = Role::Relay {
            first: cfg.first_rank,
            last: cfg.last_rank,
            nprocs: cfg.nprocs,
        };
        let Collector { listener, .. } = self;
        let (job, inner) = run_core(&listener, None, &ccfg, role)?;
        // Free the shard's endpoint before the (possibly retried) upstream
        // submission; nothing else will connect here.
        drop(listener);
        let job =
            job.ok_or_else(|| NetError::Collect("no client ever connected to this relay".into()))?;
        let merger = inner
            .merger
            .ok_or_else(|| NetError::Collect("no rank completed at this relay".into()))?;
        let level = cfg.client.ctt_level.unwrap_or_default();
        let blocks = merger.into_blocks();
        let mut uploads = Vec::with_capacity(blocks.len());
        for (i, (first, count, part)) in blocks.into_iter().enumerate() {
            let raw = part.to_bytes();
            let z = cypress_deflate::deflate(&raw, level);
            uploads.push(crate::client::BlockUpload {
                first,
                count,
                // The shard's accounting totals ride on the first block;
                // the root sums per-frame, so totals stay exact even though
                // per-rank attribution is lost above the relay.
                events: if i == 0 { inner.total_events } else { 0 },
                raw_mpi_bytes: if i == 0 { inner.raw_mpi_bytes } else { 0 },
                raw_len: raw.len() as u64,
                z,
            });
        }
        let blocks_forwarded = uploads.len() as u32;
        crate::client::submit_merged_blocks(
            &cfg.upstream,
            &cfg.client,
            cfg.nprocs,
            &job.cst_text,
            &uploads,
        )?;
        obs_log!(
            Level::Info,
            "net",
            "relay for ranks [{}, {}) forwarded {blocks_forwarded} blocks upstream",
            cfg.first_rank,
            cfg.last_rank
        );
        Ok(RelaySummary {
            ranks: cfg.last_rank - cfg.first_rank,
            blocks_forwarded,
            events: inner.total_events,
        })
    }
}

/// Run the event loops until completion or failure; returns the fixed job
/// identity (if any client connected) and the accumulated state.
fn run_core(
    listener: &Listener,
    stats_listener: Option<&Listener>,
    cfg: &CollectorConfig,
    role: Role,
) -> Result<(Option<JobInfo>, Inner), NetError> {
    let nloops = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8)
    } else {
        cfg.workers
    };
    let state = State {
        job: OnceLock::new(),
        inner: Mutex::new(Inner {
            merger: None,
            rank_ctts: Vec::new(),
            total_events: 0,
            raw_mpi_bytes: 0,
            peak_ctt_bytes: 0,
            done: false,
            fatal: None,
            clients: BTreeMap::new(),
        }),
        started: Instant::now(),
    };
    listener.set_nonblocking(true)?;
    if let Some(sl) = stats_listener {
        sl.set_nonblocking(true)?;
        obs_log!(
            Level::Info,
            "net",
            "collector stats endpoint on {}",
            sl.local_addr().map(|a| a.to_string()).unwrap_or_default()
        );
    }
    let loops: Vec<LoopShared> = (0..nloops)
        .map(|_| {
            Ok(LoopShared {
                mailbox: Mutex::new(VecDeque::new()),
                waker: Waker::new()?,
            })
        })
        .collect::<std::io::Result<_>>()?;
    obs_log!(
        Level::Info,
        "net",
        "collector listening on {} with {nloops} event loops",
        listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default()
    );
    let sh = Shared {
        state: &state,
        cfg,
        role,
        loops: &loops,
    };
    std::thread::scope(|scope| {
        for i in 1..nloops {
            scope.spawn(move || event_loop(i, sh, None));
        }
        event_loop(0, sh, Some((listener, stats_listener)));
    });
    let inner = state.inner.into_inner().unwrap();
    if let Some(f) = inner.fatal {
        return Err(NetError::Collect(f));
    }
    Ok((state.job.into_inner(), inner))
}

/// One multiplexing event loop. Loop 0 additionally owns the listeners.
fn event_loop(idx: usize, sh: Shared<'_>, listeners: Option<(&Listener, Option<&Listener>)>) {
    let me = &sh.loops[idx];
    let mut conns: Vec<Conn<'_>> = Vec::new();
    let mut poll = PollSet::new();
    // Round-robin dispatch cursor (loop 0 only).
    let mut next_loop = 0usize;
    loop {
        // Adopt connections handed over by the accepting loop.
        {
            let mut mb = me.mailbox.lock().unwrap();
            while let Some(s) = mb.pop_front() {
                conns.push(Conn::new(s, ConnState::AwaitHello));
            }
        }
        // Finished (completed or fatal)? Drain queued acks and exit.
        {
            let g = sh.state.inner.lock().unwrap();
            if g.done || g.fatal.is_some() {
                drop(g);
                for c in conns.drain(..) {
                    c.flush_blocking(sh.cfg.io_timeout);
                }
                return;
            }
        }
        if let Some(deadline) = sh.cfg.deadline {
            if sh.state.started.elapsed() > deadline {
                let missing = {
                    let g = sh.state.inner.lock().unwrap();
                    match (&g.merger, sh.role) {
                        (Some(m), _) => {
                            let mut v = m.missing_ranks();
                            if let Role::Relay { first, last, .. } = sh.role {
                                v.retain(|r| *r >= first && *r < last);
                            }
                            format!("{v:?}")
                        }
                        // No client ever connected, but a relay still
                        // knows exactly which ranks it was waiting for.
                        (None, Role::Relay { first, last, .. }) => {
                            format!("{:?}", (first..last).collect::<Vec<u32>>())
                        }
                        (None, Role::Root) => "all".into(),
                    }
                };
                fail_collection(
                    sh,
                    format!("deadline {deadline:?} exceeded with ranks missing: {missing}"),
                );
                continue;
            }
        }

        // Rebuild the poll set: waker, listeners (loop 0), then every
        // connection (write interest only while acks are pending).
        poll.clear();
        poll.push(me.waker.fd(), true, false);
        let mut job_slot = None;
        let mut stats_slot = None;
        if let Some((l, sl)) = listeners {
            job_slot = Some(poll.push(l.raw_fd(), true, false));
            if let Some(sl) = sl {
                stats_slot = Some(poll.push(sl.raw_fd(), true, false));
            }
        }
        for c in &conns {
            poll.push(c.stream.raw_fd(), true, c.tx_pending());
        }
        let mut timeout = sh
            .cfg
            .deadline
            .map(|d| d.saturating_sub(sh.state.started.elapsed()));
        if !conns.is_empty() {
            // Bound the wait so idle connections are reaped on time.
            timeout = Some(timeout.map_or(sh.cfg.io_timeout, |t| t.min(sh.cfg.io_timeout)));
        }
        if poll.wait(timeout).is_err() {
            // A transient poll failure: loop and rebuild.
            continue;
        }
        me.waker.drain();

        // Accept everything pending, dealing job sockets round-robin.
        if let Some((l, sl)) = listeners {
            if job_slot.is_some_and(|i| poll.readable(i)) {
                loop {
                    match l.accept() {
                        Ok(s) => {
                            if cypress_obs::enabled() {
                                obs().connections.inc();
                            }
                            let target = next_loop % sh.loops.len();
                            next_loop += 1;
                            if target == idx {
                                conns.push(Conn::new(s, ConnState::AwaitHello));
                            } else {
                                let tl = &sh.loops[target];
                                let mut mb = tl.mailbox.lock().unwrap();
                                if !mb.is_empty() && cypress_obs::enabled() {
                                    obs().backpressure_stalls.inc();
                                }
                                mb.push_back(s);
                                drop(mb);
                                tl.waker.wake();
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            fail_collection(sh, format!("listener failed: {e}"));
                            break;
                        }
                    }
                }
            }
            if let Some(sl) = sl {
                if stats_slot.is_some_and(|i| poll.readable(i)) {
                    loop {
                        match sl.accept() {
                            Ok(s) => conns.push(Conn::new(s, ConnState::AwaitStatsReq)),
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) => {
                                obs_log!(Level::Warn, "net", "stats listener failed: {e}");
                                break;
                            }
                        }
                    }
                }
            }
        }

        // Drive every connection (reads and writes are nonblocking, so an
        // unready socket costs one WouldBlock).
        let mut i = 0;
        while i < conns.len() {
            if drive_conn(sh, &mut conns[i]) {
                i += 1;
            } else {
                conns.swap_remove(i).stream.shutdown();
            }
        }
    }
}

/// How many socket reads one connection may take per loop tick — bounds a
/// firehose client so it cannot starve its loop's other connections.
const MAX_FILLS_PER_TICK: usize = 4;

/// Advance one connection. Returns false when it should be removed.
fn drive_conn<'a>(sh: Shared<'a>, c: &mut Conn<'a>) -> bool {
    // Flush first: pending acks unblock pipelining clients.
    if let Err(e) = c.try_flush() {
        c.abort(sh, &format!("{e}"));
        return false;
    }
    if !c.closing {
        for _ in 0..MAX_FILLS_PER_TICK {
            match c.rx.fill(&mut c.stream) {
                Ok(0) => {
                    // EOF. Clean iff the protocol finished.
                    if !matches!(c.state, ConnState::Done) {
                        c.abort(sh, "peer disconnected mid-protocol");
                    }
                    return false;
                }
                Ok(_) => {
                    c.last_activity = Instant::now();
                    loop {
                        match c.rx.try_frame() {
                            Ok(Some(frame)) => handle_frame(sh, c, frame),
                            Ok(None) => break,
                            Err(e) => {
                                c.abort(sh, &format!("{e}"));
                                return false;
                            }
                        }
                        if c.closing {
                            break;
                        }
                    }
                    if c.closing {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    c.abort(sh, &format!("{e}"));
                    return false;
                }
            }
        }
    }
    if let Err(e) = c.try_flush() {
        c.abort(sh, &format!("{e}"));
        return false;
    }
    if c.closing && !c.tx_pending() {
        return false;
    }
    if c.last_activity.elapsed() > sh.cfg.io_timeout {
        c.abort(sh, "idle timeout");
        return false;
    }
    true
}

/// The per-connection protocol state machine.
fn handle_frame<'a>(sh: Shared<'a>, c: &mut Conn<'a>, frame: Frame) {
    let st = std::mem::replace(&mut c.state, ConnState::Done);
    match (st, frame) {
        (
            ConnState::AwaitHello,
            Frame::Hello {
                version,
                rank,
                nprocs,
                mode,
                cst_text,
            },
        ) => on_hello(sh, c, version, rank, nprocs, mode, cst_text),
        (
            ConnState::Streaming {
                mut session,
                mut count,
            },
            Frame::Events { events },
        ) => {
            count += events.len() as u64;
            hists().batch_events.record(events.len() as u64);
            {
                let mut g = sh.state.inner.lock().unwrap();
                let rank = c.rank.expect("streaming conn has a rank");
                let e = g.clients.entry(rank).or_insert((ClientState::Streaming, 0));
                e.1 += events.len() as u64;
            }
            session.push_batch(&events);
            c.state = ConnState::Streaming { session, count };
        }
        (
            ConnState::Streaming { session, count },
            Frame::Finish {
                app_time,
                event_count,
            },
        ) => {
            if event_count != count {
                c.state = ConnState::Streaming { session, count };
                c.fail(
                    sh,
                    codes::PROTOCOL,
                    format!("client sent {event_count} events, collector saw {count}"),
                );
                return;
            }
            let (ctt, stats) = session.finish(app_time);
            let ranks_done = merge_in(sh, ctt, Some(stats), sh.cfg.keep_rank_ctts);
            c.queue(&Frame::FinAck { ranks_done });
            c.closing = true;
        }
        (ConnState::AwaitCtt, Frame::RankCtt { bytes }) => on_ctt_bytes(sh, c, bytes),
        (ConnState::AwaitCtt, Frame::RankCttZ { raw_len, bytes }) => {
            match cypress_deflate::inflate(&bytes) {
                Ok(raw) if raw.len() as u64 == raw_len => on_ctt_bytes(sh, c, raw),
                Ok(raw) => c.fail(
                    sh,
                    codes::PROTOCOL,
                    format!("compressed CTT declared {raw_len} bytes, got {}", raw.len()),
                ),
                Err(e) => c.fail(sh, codes::PROTOCOL, format!("undecodable deflate: {e}")),
            }
        }
        (
            ConnState::Blocks { nblocks },
            Frame::MergedBlockZ {
                first_rank,
                nranks,
                events,
                raw_mpi_bytes,
                raw_len,
                bytes,
            },
        ) => {
            c.state = ConnState::Blocks { nblocks };
            on_merged_block(
                sh,
                c,
                first_rank,
                nranks,
                events,
                raw_mpi_bytes,
                raw_len,
                bytes,
            );
        }
        (ConnState::Blocks { nblocks }, Frame::Finish { event_count, .. }) => {
            // In blocks mode the Finish cross-check counts blocks.
            if event_count != nblocks {
                c.fail(
                    sh,
                    codes::PROTOCOL,
                    format!("relay sent {event_count} blocks, collector saw {nblocks}"),
                );
                return;
            }
            let ranks_done = {
                let g = sh.state.inner.lock().unwrap();
                g.merger.as_ref().map(|m| m.received()).unwrap_or(0)
            };
            c.queue(&Frame::FinAck { ranks_done });
            c.closing = true;
        }
        (ConnState::AwaitStatsReq, Frame::StatsRequest) => {
            let stats = build_stats(sh.state);
            c.queue(&Frame::Stats { stats });
            c.closing = true;
        }
        (ConnState::AwaitStatsReq, f) => c.fail(
            sh,
            codes::PROTOCOL,
            format!("stats endpoint expects StatsRequest, got {}", f.name()),
        ),
        (ConnState::AwaitHello, f) => c.fail(
            sh,
            codes::PROTOCOL,
            format!("first frame must be Hello, got {}", f.name()),
        ),
        (st, f) => {
            c.state = st;
            let msg = format!("unexpected {} frame here", f.name());
            c.fail(sh, codes::PROTOCOL, msg);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn on_hello<'a>(
    sh: Shared<'a>,
    c: &mut Conn<'a>,
    version: u8,
    rank: u32,
    nprocs: u32,
    mode: SubmitMode,
    cst_text: String,
) {
    if version < PROTO_VERSION_MIN {
        c.fail(
            sh,
            codes::VERSION,
            format!("version {version} below minimum {PROTO_VERSION_MIN}"),
        );
        return;
    }
    let negotiated = version.min(PROTO_VERSION);
    if nprocs == 0 || rank >= nprocs {
        c.fail(
            sh,
            codes::BAD_RANK,
            format!("rank {rank} out of range for {nprocs} procs"),
        );
        return;
    }
    if mode == SubmitMode::Blocks && negotiated < 4 {
        c.fail(
            sh,
            codes::VERSION,
            format!("blocks mode requires protocol >= 4, negotiated {negotiated}"),
        );
        return;
    }
    if let Role::Relay {
        first,
        last,
        nprocs: shard_nprocs,
    } = sh.role
    {
        if nprocs != shard_nprocs {
            c.fail(
                sh,
                codes::BAD_RANK,
                format!("relay serves a {shard_nprocs}-rank job, client claims {nprocs}"),
            );
            return;
        }
        if rank < first || rank >= last {
            c.fail(
                sh,
                codes::BAD_RANK,
                format!("rank {rank} outside this relay's shard [{first}, {last})"),
            );
            return;
        }
    }

    // First Hello fixes the job: CST, job size, and the merger. Later
    // clients must match it exactly (CRC over the canonical CST text).
    let client_crc = crc32(cst_text.as_bytes());
    let job = match sh.state.job.get() {
        Some(j) => j,
        None => {
            match Cst::from_text(&cst_text) {
                Ok(cst) => {
                    let info = JobInfo {
                        nprocs,
                        cst_crc: client_crc,
                        cst_text,
                        cst,
                    };
                    // Another loop may have won the race; either way the
                    // stored job is authoritative and validated below.
                    let _ = sh.state.job.set(info);
                }
                Err(e) => {
                    c.fail(sh, codes::INTERNAL, format!("unparseable CST: {e}"));
                    return;
                }
            }
            sh.state.job.get().expect("just set")
        }
    };
    if job.nprocs != nprocs {
        c.fail(
            sh,
            codes::BAD_RANK,
            format!("job has {} procs, client claims {nprocs}", job.nprocs),
        );
        return;
    }
    if job.cst_crc != client_crc {
        c.fail(
            sh,
            codes::CST_MISMATCH,
            "client CST differs from the CST this job was opened with".into(),
        );
        return;
    }

    let already_done = {
        let mut g = sh.state.inner.lock().unwrap();
        if g.merger.is_none() {
            g.merger = Some(BinomialMerger::new(job.nprocs));
        }
        match mode {
            // A relay's Hello rank only identifies the shard; duplicate
            // blocks are per-frame no-ops, so there is no whole-session
            // short-circuit.
            SubmitMode::Blocks => false,
            _ => g.merger.as_ref().expect("just set").has_rank(rank),
        }
    };
    c.queue(&Frame::HelloAck {
        version: negotiated,
        already_done,
    });
    if already_done {
        c.closing = true;
        return;
    }
    c.rank = Some(rank);
    cypress_obs::trace_instant("net", "client_accepted", rank as u64);
    match mode {
        SubmitMode::Stream => {
            if cypress_obs::enabled() {
                obs().sessions_started.inc();
            }
            sh.state.mark_client(rank, ClientState::Streaming);
            c.state = ConnState::Streaming {
                session: Box::new(CompressSession::new(
                    &job.cst,
                    rank,
                    nprocs,
                    sh.cfg.compress.clone(),
                    sh.cfg.session.clone(),
                )),
                count: 0,
            };
        }
        SubmitMode::Ctt => {
            sh.state.mark_client(rank, ClientState::Streaming);
            c.state = ConnState::AwaitCtt;
        }
        SubmitMode::Blocks => c.state = ConnState::Blocks { nblocks: 0 },
    }
}

/// Finish a ctt-mode submission from decoded CTT bytes.
fn on_ctt_bytes(sh: Shared<'_>, c: &mut Conn<'_>, bytes: Vec<u8>) {
    let rank = c.rank.expect("ctt conn has a rank");
    let ctt = match Ctt::from_bytes(&bytes) {
        Ok(ctt) => ctt,
        Err(e) => {
            c.fail(sh, codes::PROTOCOL, format!("undecodable CTT: {e}"));
            return;
        }
    };
    if ctt.rank != rank {
        c.fail(
            sh,
            codes::BAD_RANK,
            format!("Hello said rank {rank}, CTT says {}", ctt.rank),
        );
        return;
    }
    let ranks_done = merge_in(sh, ctt, None, sh.cfg.keep_rank_ctts);
    c.queue(&Frame::FinAck { ranks_done });
    c.state = ConnState::Done;
    c.closing = true;
}

/// Absorb one relay-forwarded buddy block into the merge.
#[allow(clippy::too_many_arguments)]
fn on_merged_block(
    sh: Shared<'_>,
    c: &mut Conn<'_>,
    first_rank: u32,
    nranks: u32,
    events: u64,
    raw_mpi_bytes: u64,
    raw_len: u64,
    bytes: Vec<u8>,
) {
    let raw = match cypress_deflate::inflate(&bytes) {
        Ok(raw) if raw.len() as u64 == raw_len => raw,
        Ok(raw) => {
            c.fail(
                sh,
                codes::PROTOCOL,
                format!("merged block declared {raw_len} bytes, got {}", raw.len()),
            );
            return;
        }
        Err(e) => {
            c.fail(sh, codes::PROTOCOL, format!("undecodable deflate: {e}"));
            return;
        }
    };
    let block = match MergedCtt::from_bytes(&raw) {
        Ok(b) => b,
        Err(e) => {
            c.fail(
                sh,
                codes::PROTOCOL,
                format!("undecodable merged block: {e}"),
            );
            return;
        }
    };
    if let Role::Relay { first, last, .. } = sh.role {
        if first_rank < first || first_rank + nranks > last {
            c.fail(
                sh,
                codes::BAD_RANK,
                format!(
                    "block [{first_rank}, {}) outside this relay's shard [{first}, {last})",
                    first_rank + nranks
                ),
            );
            return;
        }
    }
    let complete = {
        let mut g = sh.state.inner.lock().unwrap();
        let Some(m) = g.merger.as_mut() else {
            drop(g);
            c.fail(sh, codes::INTERNAL, "merger missing at block time".into());
            return;
        };
        let t0 = Instant::now();
        let res = m.add_block(first_rank, nranks, block);
        hists().merge_step_ns.record(t0.elapsed().as_nanos() as u64);
        match res {
            Ok(true) => {
                let received = g.merger.as_ref().expect("still set").received();
                g.total_events += events;
                g.raw_mpi_bytes += raw_mpi_bytes;
                for r in first_rank..first_rank + nranks {
                    let e = g.clients.entry(r).or_insert((ClientState::Merged, 0));
                    e.0 = ClientState::Merged;
                }
                if events > 0 {
                    g.clients
                        .entry(first_rank)
                        .or_insert((ClientState::Merged, 0))
                        .1 += events;
                }
                if cypress_obs::enabled() {
                    obs().ranks_merged.set_max(received as i64);
                }
                let job_nprocs = sh.state.job.get().expect("job fixed").nprocs;
                received == sh.role.expected(job_nprocs)
            }
            // A relay retry re-sending blocks its first attempt landed.
            Ok(false) => false,
            Err(e) => {
                drop(g);
                c.fail(sh, codes::PROTOCOL, format!("bad merged block: {e}"));
                return;
            }
        }
    };
    let ConnState::Blocks { nblocks } = &mut c.state else {
        unreachable!("on_merged_block called outside blocks mode")
    };
    *nblocks += 1;
    if complete {
        let mut g = sh.state.inner.lock().unwrap();
        g.done = true;
        drop(g);
        wake_all(sh.loops);
    }
}

/// Fold one finished rank CTT into the incremental binomial merge.
/// First-completion-wins: duplicates are acknowledged but discarded.
fn merge_in(
    sh: Shared<'_>,
    ctt: Ctt,
    stats: Option<cypress_core::SessionStats>,
    keep: bool,
) -> u32 {
    let mut g = sh.state.inner.lock().unwrap();
    let (newly_merged, received) = {
        let m = g.merger.as_mut().expect("merger installed at Hello");
        let t0 = Instant::now();
        let newly = m.add(&ctt);
        hists().merge_step_ns.record(t0.elapsed().as_nanos() as u64);
        (newly, m.received())
    };
    if newly_merged {
        let entry = g
            .clients
            .entry(ctt.rank)
            .or_insert((ClientState::Merged, 0));
        entry.0 = ClientState::Merged;
        if entry.1 == 0 {
            // Ctt-mode ranks stream no Events frames; credit the record
            // count so per-client telemetry is nonzero either way.
            entry.1 = match &stats {
                Some(st) => st.mpi_events,
                None => ctt.op_count(),
            };
        }
        match stats {
            Some(st) => {
                g.total_events += st.mpi_events;
                g.raw_mpi_bytes += st.raw_mpi_bytes;
                g.peak_ctt_bytes = g.peak_ctt_bytes.max(st.peak_ctt_bytes);
            }
            None => g.total_events += ctt.op_count(),
        }
        if keep {
            g.rank_ctts.push(ctt);
        }
        if cypress_obs::enabled() {
            obs().sessions_completed.inc();
            obs().ranks_merged.set_max(received as i64);
        }
    }
    let job_nprocs = sh.state.job.get().expect("job fixed").nprocs;
    if received == sh.role.expected(job_nprocs) {
        g.done = true;
        drop(g);
        wake_all(sh.loops);
    }
    received
}

/// Snapshot the running collection into a wire-ready [`Stats`].
fn build_stats(state: &State) -> Stats {
    let g = state.inner.lock().unwrap();
    let uptime_ns = state.started.elapsed().as_nanos() as u64;
    let (ranks_done, merge_depth, resident_blocks) = match &g.merger {
        Some(m) => (m.received(), m.max_depth(), m.pending_blocks() as u32),
        None => (0, 0, 0),
    };
    let events_total = g.total_events.max(
        // Mid-stream events are not yet in total_events; count them so the
        // rate reflects live receive progress, not just merged ranks.
        g.clients.values().map(|&(_, ev)| ev).sum(),
    );
    let events_per_sec_x1000 = if uptime_ns == 0 {
        0
    } else {
        ((events_total as u128 * 1_000_000_000_000u128) / uptime_ns as u128) as u64
    };
    let clients = g
        .clients
        .iter()
        .map(|(&rank, &(st, events))| ClientStat {
            rank,
            state: st,
            events,
        })
        .collect();
    let h = hists();
    let quantiles = [
        ("batch_events", &h.batch_events),
        ("merge_step_ns", &h.merge_step_ns),
    ]
    .into_iter()
    .filter(|(_, h)| h.count() > 0)
    .map(|(name, h)| QuantileStat {
        name: name.to_string(),
        count: h.count(),
        p50: h.quantile(0.50),
        p90: h.quantile(0.90),
        p99: h.quantile(0.99),
    })
    .collect();
    Stats {
        version: STATS_VERSION,
        uptime_ns,
        nprocs: state.job.get().map(|j| j.nprocs).unwrap_or(0),
        ranks_done,
        events_total,
        events_per_sec_x1000,
        merge_depth,
        resident_blocks,
        clients,
        quantiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{submit_ctt, submit_stream, ClientConfig};
    use crate::proto::{read_frame, write_frame};
    use cypress_core::{compress_trace, merge_all};
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};
    use cypress_trace::codec::Codec;
    use cypress_trace::RawTrace;

    const SRC: &str = r#"fn main() {
        let r = rank(); let s = size();
        for k in 0..8 {
            if r < s - 1 { send(r + 1, 2048, 0); }
            if r > 0 { recv(r - 1, 2048, 0); }
            allreduce(16);
        }
    }"#;

    fn traces(nprocs: u32) -> (cypress_cst::StaticInfo, Vec<RawTrace>) {
        let p = parse(SRC).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        (info, traces)
    }

    fn serve_in_background(
        cfg: CollectorConfig,
    ) -> (
        Addr,
        std::thread::JoinHandle<Result<CollectedJob, NetError>>,
    ) {
        let collector = Collector::bind(&Addr::parse("127.0.0.1:0").unwrap()).unwrap();
        let addr = collector.local_addr().unwrap();
        let handle = std::thread::spawn(move || collector.run(&cfg));
        (addr, handle)
    }

    #[test]
    fn loopback_stream_collection_matches_local_merge() {
        let nprocs = 6;
        let (info, traces) = traces(nprocs);
        let cst_text = info.cst.to_text();
        let local: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        let want = merge_all(&local).to_bytes();

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 3,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let cfg = ClientConfig::default();
        std::thread::scope(|scope| {
            // Submit in reverse rank order: arrival order must not matter.
            for t in traces.iter().rev() {
                let (addr, cfg, cst_text) = (&addr, &cfg, &cst_text);
                scope.spawn(move || {
                    let out = submit_stream(addr, cfg, t.rank, t.nprocs, cst_text, |sink| {
                        for ev in &t.events {
                            sink.event(ev.clone());
                        }
                        Ok(t.app_time)
                    })
                    .unwrap();
                    assert!(!out.already_done);
                    assert_eq!(out.events_sent, t.events.len() as u64);
                });
            }
        });
        let job = server.join().unwrap().unwrap();
        assert_eq!(job.nprocs, nprocs);
        assert_eq!(job.merged.to_bytes(), want);
        assert_eq!(job.rank_ctts.len(), nprocs as usize);
        for (ctt, local) in job.rank_ctts.iter().zip(&local) {
            assert_eq!(ctt, local, "rank {} ctt differs", ctt.rank);
        }
        assert_eq!(
            job.total_events,
            traces.iter().map(|t| t.mpi_count() as u64).sum::<u64>()
        );
    }

    #[test]
    fn loopback_ctt_submission_matches_local_merge() {
        let nprocs = 4;
        let (info, traces) = traces(nprocs);
        let cst_text = info.cst.to_text();
        let local: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        let want = merge_all(&local).to_bytes();

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 2,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let cfg = ClientConfig::default();
        for ctt in local.iter().rev() {
            submit_ctt(&addr, &cfg, ctt, &cst_text).unwrap();
        }
        let job = server.join().unwrap().unwrap();
        assert_eq!(job.merged.to_bytes(), want);
        assert_eq!(job.raw_mpi_bytes, 0);
    }

    #[test]
    fn ctt_submission_levels_and_raw_agree() {
        let nprocs = 3;
        let (info, traces) = traces(nprocs);
        let cst_text = info.cst.to_text();
        let local: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        let want = merge_all(&local).to_bytes();

        for level in [
            None,
            Some(cypress_deflate::Level::Fast),
            Some(cypress_deflate::Level::Best),
        ] {
            let (addr, server) = serve_in_background(CollectorConfig {
                workers: 2,
                deadline: Some(Duration::from_secs(60)),
                ..CollectorConfig::default()
            });
            let cfg = ClientConfig {
                ctt_level: level,
                ..ClientConfig::default()
            };
            for ctt in &local {
                submit_ctt(&addr, &cfg, ctt, &cst_text).unwrap();
            }
            let job = server.join().unwrap().unwrap();
            assert_eq!(job.merged.to_bytes(), want, "level {level:?}");
        }
    }

    #[test]
    fn v1_client_negotiates_down_and_submits_raw() {
        let (info, traces) = traces(1);
        let cst_text = info.cst.to_text();
        let ctt = compress_trace(&info.cst, &traces[0], &CompressConfig::default());

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 1,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        // Hand-rolled v1 client: the collector must answer with version 1
        // and accept the raw RankCtt frame.
        let mut stream = crate::transport::Stream::connect(&addr, Duration::from_secs(5)).unwrap();
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: 1,
                rank: 0,
                nprocs: 1,
                mode: SubmitMode::Ctt,
                cst_text: cst_text.clone(),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap() {
            Frame::HelloAck { version, .. } => assert_eq!(version, 1),
            f => panic!("expected HelloAck, got {}", f.name()),
        }
        write_frame(
            &mut stream,
            &Frame::RankCtt {
                bytes: ctt.to_bytes(),
            },
        )
        .unwrap();
        assert!(matches!(
            read_frame(&mut stream).unwrap(),
            Frame::FinAck { ranks_done: 1 }
        ));
        let job = server.join().unwrap().unwrap();
        assert_eq!(job.merged.to_bytes(), merge_all(&[ctt]).to_bytes());
    }

    #[test]
    fn blocks_mode_requires_protocol_v4() {
        let (info, traces) = traces(2);
        let cst_text = info.cst.to_text();
        let local: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 1,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        // A v3 peer claiming blocks mode must be rejected loudly.
        let mut stream = crate::transport::Stream::connect(&addr, Duration::from_secs(5)).unwrap();
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: 3,
                rank: 0,
                nprocs: 2,
                mode: SubmitMode::Blocks,
                cst_text: cst_text.clone(),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, codes::VERSION),
            f => panic!("expected Error, got {}", f.name()),
        }
        // Finish the job so the server exits.
        let cfg = ClientConfig::default();
        for ctt in &local {
            submit_ctt(&addr, &cfg, ctt, &cst_text).unwrap();
        }
        server.join().unwrap().unwrap();
    }

    #[test]
    fn corrupt_compressed_ctt_is_rejected() {
        let (info, traces) = traces(1);
        let cst_text = info.cst.to_text();
        let ctt = compress_trace(&info.cst, &traces[0], &CompressConfig::default());
        let raw = ctt.to_bytes();

        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 1,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let mut stream = crate::transport::Stream::connect(&addr, Duration::from_secs(5)).unwrap();
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: 2,
                rank: 0,
                nprocs: 1,
                mode: SubmitMode::Ctt,
                cst_text: cst_text.clone(),
            },
        )
        .unwrap();
        let _ack = read_frame(&mut stream).unwrap();
        // Declare the wrong raw length; the collector must reject before
        // decoding the CTT.
        write_frame(
            &mut stream,
            &Frame::RankCttZ {
                raw_len: raw.len() as u64 + 1,
                bytes: cypress_deflate::deflate(&raw, cypress_deflate::Level::Fast),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, codes::PROTOCOL),
            f => panic!("expected Error, got {}", f.name()),
        }
        // Finish the job properly so the server exits.
        submit_ctt(&addr, &ClientConfig::default(), &ctt, &cst_text).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn deadline_reports_missing_ranks() {
        let (info, traces) = traces(4);
        let cst_text = info.cst.to_text();
        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 2,
            deadline: Some(Duration::from_millis(300)),
            ..CollectorConfig::default()
        });
        // Submit only rank 2; the run must fail naming the other three.
        let t = &traces[2];
        submit_stream(
            &addr,
            &ClientConfig::default(),
            t.rank,
            t.nprocs,
            &cst_text,
            |sink| {
                for ev in &t.events {
                    sink.event(ev.clone());
                }
                Ok(t.app_time)
            },
        )
        .unwrap();
        let err = server.join().unwrap().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("deadline"), "{msg}");
        for r in ["0", "1", "3"] {
            assert!(msg.contains(r), "missing rank {r} not named: {msg}");
        }
    }

    #[test]
    fn stats_endpoint_reports_live_collection() {
        let nprocs = 4u32;
        let (info, traces) = traces(nprocs);
        let cst_text = info.cst.to_text();

        let mut collector = Collector::bind(&Addr::parse("127.0.0.1:0").unwrap()).unwrap();
        let addr = collector.local_addr().unwrap();
        let stats_addr = collector
            .bind_stats(&Addr::parse("127.0.0.1:0").unwrap())
            .unwrap();
        let cfg = CollectorConfig {
            workers: 2,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        };
        let server = std::thread::spawn(move || collector.run(&cfg));

        // Before any client: an empty but well-formed snapshot.
        let s0 = crate::stats::fetch_stats(&stats_addr, Duration::from_secs(5)).unwrap();
        assert_eq!(s0.version, STATS_VERSION);
        assert_eq!(s0.nprocs, 0);
        assert_eq!(s0.ranks_done, 0);
        assert!(s0.clients.is_empty());

        let ccfg = ClientConfig::default();
        let submit = |t: &cypress_trace::RawTrace| {
            submit_stream(&addr, &ccfg, t.rank, t.nprocs, &cst_text, |sink| {
                for ev in &t.events {
                    sink.event(ev.clone());
                }
                Ok(t.app_time)
            })
            .unwrap();
        };
        // Submit ranks 0..2 in order; FinAck means each is merged, so the
        // next snapshot is deterministic.
        for t in traces.iter().take(nprocs as usize - 1) {
            submit(t);
        }
        let s1 = crate::stats::fetch_stats(&stats_addr, Duration::from_secs(5)).unwrap();
        assert_eq!(s1.nprocs, nprocs);
        assert_eq!(s1.ranks_done, nprocs - 1);
        assert_eq!(s1.clients.len(), nprocs as usize - 1);
        for (c, t) in s1.clients.iter().zip(&traces) {
            assert_eq!(c.rank, t.rank);
            assert_eq!(c.state, ClientState::Merged);
            assert_eq!(c.events, t.events.len() as u64, "rank {}", c.rank);
        }
        assert!(s1.events_total > 0);
        assert!(s1.uptime_ns > 0);
        // Ranks {0,1,2} of 4: buddy block [0,1] plus singleton [2].
        assert_eq!(s1.merge_depth, 1);
        assert_eq!(s1.resident_blocks, 2);
        for name in ["batch_events", "merge_step_ns"] {
            let q = s1
                .quantiles
                .iter()
                .find(|q| q.name == name)
                .unwrap_or_else(|| panic!("missing quantile row {name}"));
            assert!(q.count > 0);
        }

        // Completing the job shuts the stats loop down with the collector.
        submit(&traces[nprocs as usize - 1]);
        let job = server.join().unwrap().unwrap();
        assert_eq!(job.nprocs, nprocs);
        assert!(
            crate::stats::fetch_stats(&stats_addr, Duration::from_millis(500)).is_err(),
            "stats endpoint must die with the collection"
        );
    }

    #[test]
    fn cst_mismatch_is_rejected() {
        let (info, traces) = traces(2);
        let cst_text = info.cst.to_text();
        let (addr, server) = serve_in_background(CollectorConfig {
            workers: 2,
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        });
        let cfg = ClientConfig {
            attempts: 1,
            ..ClientConfig::default()
        };
        // First client opens the job with the real CST.
        let t0 = &traces[0];
        submit_stream(&addr, &cfg, 0, 2, &cst_text, |sink| {
            for ev in &t0.events {
                sink.event(ev.clone());
            }
            Ok(t0.app_time)
        })
        .unwrap();
        // Second client lies about the CST and must be turned away.
        let other = parse("fn main() { barrier(); }").unwrap();
        let other_text = analyze_program(&other).cst.to_text();
        let err = submit_stream(&addr, &cfg, 1, 2, &other_text, |_| Ok(0)).unwrap_err();
        match err {
            NetError::Remote { code, .. } => assert_eq!(code, codes::CST_MISMATCH),
            e => panic!("expected CST_MISMATCH, got {e}"),
        }
        // Finish the job so the server thread exits cleanly.
        let t1 = &traces[1];
        submit_stream(&addr, &cfg, 1, 2, &cst_text, |sink| {
            for ev in &t1.events {
                sink.event(ev.clone());
            }
            Ok(t1.app_time)
        })
        .unwrap();
        server.join().unwrap().unwrap();
    }
}
