//! Sharded collector trees: spawn a root plus a tier of relay collectors
//! locally so one process (tests, the bench harness, `cypress serve
//! --tree`) can stand up the whole topology.
//!
//! Ranks are split into `relays` contiguous shards of (near-)equal size;
//! each relay accepts its shard's clients on its own **leaf endpoint**,
//! merges them with a global-sized [`cypress_core::BinomialMerger`], and
//! forwards the resulting aligned buddy blocks to the root. Because every
//! forwarded block sits exactly on the global buddy tree, the root's merged
//! job is byte-identical to a flat collection — or a local `merge_all` —
//! over the same ranks.
//!
//! Leaf endpoint naming is deterministic so external clients can find
//! their relay without a discovery protocol: a Unix root at
//! `unix:/run/cypress.sock` puts relay `k` at `unix:/run/cypress.sock.rk`;
//! a TCP root binds each relay on an ephemeral port of the root's host
//! (reported by [`Tree::leaves`]).

use crate::client::ClientConfig;
use crate::collector::{CollectedJob, Collector, CollectorConfig, RelayConfig, RelaySummary};
use crate::transport::Addr;
use crate::NetError;
use std::thread::JoinHandle;

/// Topology knobs for [`spawn_tree`].
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Mid-tier relay collectors (the root's fanout). Clamped to `nprocs`.
    pub relays: u32,
    /// Global job size; fixed up front so relays can size their mergers
    /// and validate shard membership before the first client connects.
    pub nprocs: u32,
    /// Applied to the root; relays inherit it minus root-only concerns
    /// (per-rank CTT retention, the stats endpoint).
    pub collector: CollectorConfig,
    /// Retry policy for relay → root submissions.
    pub client: ClientConfig,
}

/// A running collector tree. Submit each rank to
/// [`Tree::leaf_for_rank`], then [`Tree::join`] for the collected job.
pub struct Tree {
    leaves: Vec<Addr>,
    ranges: Vec<(u32, u32)>,
    stats_addr: Option<Addr>,
    root: JoinHandle<Result<CollectedJob, NetError>>,
    relays: Vec<JoinHandle<Result<RelaySummary, NetError>>>,
}

impl Tree {
    /// The relay leaf endpoints, in shard order.
    pub fn leaves(&self) -> &[Addr] {
        &self.leaves
    }

    /// The rank ranges `[first, last)` served by each leaf, in shard order.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// The root's resolved stats endpoint, when one was configured.
    pub fn stats_addr(&self) -> Option<&Addr> {
        self.stats_addr.as_ref()
    }

    /// The leaf endpoint rank `rank` must submit to.
    pub fn leaf_for_rank(&self, rank: u32) -> &Addr {
        let i = self
            .ranges
            .iter()
            .position(|&(first, last)| rank >= first && rank < last)
            .expect("rank within the job");
        &self.leaves[i]
    }

    /// Wait for the whole topology. Relay failures surface first (they are
    /// the cause when the root then misses a shard's ranks).
    pub fn join(self) -> Result<CollectedJob, NetError> {
        let mut relay_err = None;
        for h in self.relays {
            match h.join() {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => {
                    relay_err.get_or_insert(e);
                }
                Err(_) => {
                    relay_err.get_or_insert(NetError::Collect("relay panicked".into()));
                }
            }
        }
        let root = match self.root.join() {
            Ok(r) => r,
            Err(_) => Err(NetError::Collect("root collector panicked".into())),
        };
        match (root, relay_err) {
            (Ok(job), None) => Ok(job),
            // A failed relay is the root cause even if the root also
            // reports (its deadline naming the shard's missing ranks).
            (_, Some(e)) => Err(e),
            (Err(e), None) => Err(e),
        }
    }
}

/// Split `[0, nprocs)` into `relays` contiguous, near-equal shards.
fn shard_ranges(nprocs: u32, relays: u32) -> Vec<(u32, u32)> {
    let relays = relays.clamp(1, nprocs.max(1));
    let per = nprocs.div_ceil(relays);
    let mut out = Vec::new();
    let mut first = 0;
    while first < nprocs {
        let last = (first + per).min(nprocs);
        out.push((first, last));
        first = last;
    }
    out
}

/// The deterministic leaf endpoint for relay `k` under a given root
/// address: `unix:<path>.r<k>` for Unix roots, an ephemeral port on the
/// root's host for TCP (resolved at bind time).
fn leaf_addr(root: &Addr, k: usize) -> Result<Addr, NetError> {
    match root {
        Addr::Unix(path) => {
            let mut p = path.clone().into_os_string();
            p.push(format!(".r{k}"));
            Ok(Addr::Unix(p.into()))
        }
        Addr::Tcp(hp) => {
            let host = hp.rsplit_once(':').map(|(h, _)| h).unwrap_or("127.0.0.1");
            Addr::parse(&format!("{host}:0"))
        }
    }
}

/// Bind and launch a root plus `cfg.relays` relay collectors. The root
/// listens on `root_listen`; each relay's resolved leaf endpoint is in
/// [`Tree::leaves`] before this returns, so clients can connect
/// immediately.
pub fn spawn_tree(root_listen: &Addr, cfg: &TreeConfig) -> Result<Tree, NetError> {
    if cfg.nprocs == 0 {
        return Err(NetError::Collect("tree needs nprocs > 0".into()));
    }
    let mut root = Collector::bind(root_listen)?;
    let root_addr = root.local_addr()?;
    let stats_addr = match &cfg.collector.stats_addr {
        Some(a) => Some(root.bind_stats(a)?),
        None => None,
    };
    let ranges = shard_ranges(cfg.nprocs, cfg.relays);
    let mut leaves = Vec::with_capacity(ranges.len());
    let mut bound = Vec::with_capacity(ranges.len());
    for k in 0..ranges.len() {
        let c = Collector::bind(&leaf_addr(&root_addr, k)?)?;
        leaves.push(c.local_addr()?);
        bound.push(c);
    }
    let root_cfg = cfg.collector.clone();
    let root_handle = std::thread::spawn(move || root.run(&root_cfg));
    let mut relays = Vec::with_capacity(bound.len());
    for (c, &(first, last)) in bound.into_iter().zip(&ranges) {
        let rcfg = RelayConfig {
            first_rank: first,
            last_rank: last,
            nprocs: cfg.nprocs,
            upstream: root_addr.clone(),
            client: cfg.client.clone(),
            collector: cfg.collector.clone(),
        };
        relays.push(std::thread::spawn(move || c.run_relay(&rcfg)));
    }
    Ok(Tree {
        leaves,
        ranges,
        stats_addr,
        root: root_handle,
        relays,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_contiguously() {
        for nprocs in [1u32, 2, 5, 7, 16, 31, 256] {
            for relays in [1u32, 2, 3, 8, 300] {
                let r = shard_ranges(nprocs, relays);
                assert_eq!(r[0].0, 0);
                assert_eq!(r.last().unwrap().1, nprocs);
                for w in r.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "gap in {r:?}");
                    assert!(w[0].1 > w[0].0);
                }
                assert!(r.len() as u32 <= relays.min(nprocs));
            }
        }
    }

    #[test]
    fn unix_leaves_are_deterministic() {
        let root = Addr::parse("unix:/tmp/cy.sock").unwrap();
        assert_eq!(
            leaf_addr(&root, 3).unwrap(),
            Addr::parse("unix:/tmp/cy.sock.r3").unwrap()
        );
    }
}
