//! # cypress-net — networked trace collection
//!
//! The paper's dynamic module merges per-process CTTs over a binomial
//! reduction tree inside `MPI_Finalize`. This crate lifts that reduction
//! onto real connections: ranks (or whole nodes) stream their trace to a
//! **collector daemon** which compresses each stream online and reduces the
//! finished CTTs through [`cypress_core::BinomialMerger`] *as they arrive*
//! — the collector never barriers on the full rank set before starting to
//! merge, and at most `⌈log2 P⌉ + 1` partial merges are ever resident.
//!
//! Layers, std-only (no external dependencies, matching the repo's
//! offline-build rule):
//!
//! - [`proto`] — the framed wire protocol: length-prefixed, versioned,
//!   CRC-checked frames (gzip polynomial via `cypress-deflate`) carrying
//!   per-rank event chunks, finalized CTT bytes, or relay-merged buddy
//!   blocks, plus the reusable [`proto::FrameBuf`] decode buffer.
//! - [`transport`] — one [`transport::Addr`] / [`transport::Stream`]
//!   abstraction over TCP and Unix-domain sockets (`TCP_NODELAY`
//!   everywhere; small acks must not eat Nagle + delayed-ACK floors).
//! - [`poll`] — readiness polling in pure std (`poll(2)` via `extern "C"`
//!   plus a self-pipe waker); the collector blocks here, never in a sleep
//!   loop.
//! - [`client`] / [`collector`] — the submitting side (connect/send retry
//!   with exponential backoff, frame pipelining in coalesced writes,
//!   per-request timeouts, drain-on-finish) and the daemon side (a small
//!   pool of event loops multiplexing thousands of nonblocking
//!   connections, incremental binomial merge, duplicate-rank tolerance).
//! - [`tree`] — sharded collection: mid-tier **relay** collectors each own
//!   a contiguous rank shard and forward merged buddy blocks upstream, so
//!   the root handles `FANOUT` relay connections instead of `P` clients.
//!
//! Because the merge association is fixed by rank indices and `TimeStats`
//! aggregation is exactly associative, a collected job's merged CTT is
//! **byte-identical** to `merge_all` over the same ranks locally — whether
//! clients hit the root directly or a relay tree sits in between. Pinned by
//! `tests/net_collect.rs` (out-of-order submission, mid-stream client
//! kills) and `tests/net_tree.rs` (shuffled arrival through relays, relay
//! death).

pub mod client;
pub mod collector;
pub mod poll;
pub mod proto;
pub mod stats;
pub mod transport;
pub mod tree;

pub use client::{
    submit_ctt, submit_merged_blocks, submit_stream, BlockUpload, ClientConfig, SubmitOutcome,
};
pub use collector::{CollectedJob, Collector, CollectorConfig, RelayConfig, RelaySummary};
pub use proto::{Frame, SubmitMode, MAX_FRAME_BODY, PROTO_VERSION, PROTO_VERSION_MIN};
pub use stats::{fetch_stats, ClientStat, ClientState, QuantileStat, Stats, STATS_VERSION};
pub use transport::{Addr, Listener, Stream};
pub use tree::{spawn_tree, Tree, TreeConfig};

use std::fmt;
use std::sync::OnceLock;

/// Network-layer errors.
#[derive(Debug)]
pub enum NetError {
    Io(std::io::Error),
    /// Malformed frame: bad length prefix, oversized body, codec failure,
    /// or an unexpected end of stream.
    Frame(String),
    /// A frame body failed its CRC check.
    Crc {
        stored: u32,
        computed: u32,
    },
    /// The peer speaks a protocol version outside our supported range.
    Version {
        theirs: u8,
    },
    /// The peer reported a protocol error (see [`proto::codes`]).
    Remote {
        code: u16,
        message: String,
    },
    /// Unparseable listen/connect address.
    Addr(String),
    /// The peer sent a frame the protocol state machine does not allow
    /// here.
    Protocol(String),
    /// Event production failed on the submitting side (not retryable).
    Source(String),
    /// Collection failed as a whole (deadline hit with ranks missing,
    /// listener died).
    Collect(String),
    /// Every connect/submit attempt failed.
    RetriesExhausted {
        attempts: u32,
        last: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "net io error: {e}"),
            NetError::Frame(m) => write!(f, "bad frame: {m}"),
            NetError::Crc { stored, computed } => write!(
                f,
                "frame crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            NetError::Version { theirs } => write!(
                f,
                "peer protocol version {theirs} unsupported (accept {PROTO_VERSION_MIN}..={PROTO_VERSION})",
                PROTO_VERSION_MIN = proto::PROTO_VERSION_MIN,
                PROTO_VERSION = proto::PROTO_VERSION,
            ),
            NetError::Remote { code, message } => {
                write!(f, "peer error {code} ({}): {message}", proto::codes::name(*code))
            }
            NetError::Addr(m) => write!(f, "bad address: {m}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::Source(m) => write!(f, "event source failed: {m}"),
            NetError::Collect(m) => write!(f, "collection failed: {m}"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last error: {last}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl NetError {
    /// Whether a fresh attempt against the same collector could succeed:
    /// transport-level failures are retryable, semantic rejections are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Io(_) | NetError::Frame(_) | NetError::Crc { .. } => true,
            NetError::Remote { code, .. } => *code == proto::codes::BUSY,
            _ => false,
        }
    }
}

/// Network instrumentation handles (scope `net`).
pub(crate) struct NetMetrics {
    /// Frame bytes received (framing + body), both sides.
    pub bytes_in: cypress_obs::Counter,
    /// Frame bytes sent (framing + body), both sides.
    pub bytes_out: cypress_obs::Counter,
    pub frames_in: cypress_obs::Counter,
    pub frames_out: cypress_obs::Counter,
    /// Connections the collector accepted.
    pub connections: cypress_obs::Counter,
    /// Compression sessions the collector opened for stream-mode clients.
    pub sessions_started: cypress_obs::Counter,
    /// Sessions that reached Finish and merged.
    pub sessions_completed: cypress_obs::Counter,
    /// Sessions dropped mid-stream (disconnect, frame error); the partial
    /// CTT is discarded and the client is expected to retry from scratch.
    pub sessions_aborted: cypress_obs::Counter,
    /// Accepted connections dealt to an event loop whose mailbox already
    /// held sockets it had not yet adopted.
    pub backpressure_stalls: cypress_obs::Counter,
    /// Ranks merged into the collector's binomial tree so far.
    pub ranks_merged: cypress_obs::Gauge,
}

pub(crate) fn obs() -> &'static NetMetrics {
    static M: OnceLock<NetMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("net");
        NetMetrics {
            bytes_in: s.counter("bytes_in"),
            bytes_out: s.counter("bytes_out"),
            frames_in: s.counter("frames_in"),
            frames_out: s.counter("frames_out"),
            connections: s.counter("connections"),
            sessions_started: s.counter("sessions_started"),
            sessions_completed: s.counter("sessions_completed"),
            sessions_aborted: s.counter("sessions_aborted"),
            backpressure_stalls: s.counter("backpressure_stalls"),
            ranks_merged: s.gauge("ranks_merged"),
        }
    })
}
