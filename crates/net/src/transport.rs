//! Address parsing and a single stream/listener abstraction over TCP and
//! Unix-domain sockets.
//!
//! Addresses use one syntax everywhere (`--listen`, `--connect`, the bench
//! harness): `unix:<path>` selects a Unix-domain socket, anything else is a
//! TCP `host:port`. `host:0` binds an ephemeral port;
//! [`Listener::local_addr`] reports the resolved address so tests and the
//! CLI can hand it to clients.

use crate::NetError;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A collector endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// TCP `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl Addr {
    /// Parse `unix:<path>` or `host:port`.
    pub fn parse(s: &str) -> Result<Addr, NetError> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(NetError::Addr("empty unix socket path".into()));
            }
            return Ok(Addr::Unix(PathBuf::from(path)));
        }
        // Validate host:port shape early so `serve --listen garbage` fails
        // with a clear message instead of a bind error.
        match s.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
                Ok(Addr::Tcp(s.to_string()))
            }
            _ => Err(NetError::Addr(format!(
                "expected host:port or unix:<path>, got {s:?}"
            ))),
        }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Tcp(hp) => f.write_str(hp),
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A bound server socket.
pub enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    pub fn bind(addr: &Addr) -> Result<Listener, NetError> {
        match addr {
            Addr::Tcp(hp) => Ok(Listener::Tcp(TcpListener::bind(hp)?)),
            #[cfg(unix)]
            Addr::Unix(path) => {
                // A stale socket file from a crashed collector would make
                // bind fail; remove it (connect() to a dead socket errors,
                // so this cannot steal a live endpoint's clients silently).
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            #[cfg(not(unix))]
            Addr::Unix(_) => Err(NetError::Addr(
                "unix sockets unsupported on this platform".into(),
            )),
        }
    }

    /// The resolved local address in [`Addr::parse`] syntax.
    pub fn local_addr(&self) -> Result<Addr, NetError> {
        match self {
            Listener::Tcp(l) => Ok(Addr::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(Addr::Unix(path.clone())),
        }
    }

    pub fn set_nonblocking(&self, nb: bool) -> Result<(), NetError> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb)?,
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(nb)?,
        }
        Ok(())
    }

    pub fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // Nagle + delayed-ACK interact badly with the protocol's
                // small ack frames (a ~40 ms floor per FinAck on Linux);
                // every accepted TCP stream runs with TCP_NODELAY.
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }

    /// The raw fd for readiness polling (see [`crate::poll`]).
    #[cfg(unix)]
    pub fn raw_fd(&self) -> crate::poll::RawFd {
        use std::os::unix::io::AsRawFd;
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }

    #[cfg(not(unix))]
    pub fn raw_fd(&self) -> crate::poll::RawFd {
        -1
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected socket, either family.
pub enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connect with a timeout (TCP resolves then uses `connect_timeout`;
    /// Unix connects are local and effectively immediate).
    pub fn connect(addr: &Addr, timeout: Duration) -> Result<Stream, NetError> {
        match addr {
            Addr::Tcp(hp) => {
                let mut last = None;
                for sa in hp.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sa, timeout) {
                        Ok(s) => {
                            // Same rationale as in `Listener::accept`: the
                            // client's Finish frame is small and latency-
                            // critical, so Nagle is disabled on every
                            // outbound TCP stream too.
                            let _ = s.set_nodelay(true);
                            return Ok(Stream::Tcp(s));
                        }
                        Err(e) => last = Some(e),
                    }
                }
                Err(match last {
                    Some(e) => NetError::Io(e),
                    None => NetError::Addr(format!("{hp} resolved to no addresses")),
                })
            }
            #[cfg(unix)]
            Addr::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Addr::Unix(_) => Err(NetError::Addr(
                "unix sockets unsupported on this platform".into(),
            )),
        }
    }

    /// Apply one per-request timeout to both read and write.
    pub fn set_io_timeout(&self, timeout: Duration) -> Result<(), NetError> {
        let t = Some(timeout);
        match self {
            Stream::Tcp(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)?;
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)?;
            }
        }
        Ok(())
    }

    /// Switch between blocking and nonblocking I/O (the collector's event
    /// loops run every accepted stream nonblocking).
    pub fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    /// The raw fd for readiness polling (see [`crate::poll`]).
    #[cfg(unix)]
    pub fn raw_fd(&self) -> crate::poll::RawFd {
        use std::os::unix::io::AsRawFd;
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }

    #[cfg(not(unix))]
    pub fn raw_fd(&self) -> crate::poll::RawFd {
        -1
    }

    /// Best-effort full shutdown (used after the drain handshake).
    pub fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_tcp_and_unix() {
        assert_eq!(
            Addr::parse("127.0.0.1:9000").unwrap(),
            Addr::Tcp("127.0.0.1:9000".into())
        );
        assert_eq!(
            Addr::parse("unix:/tmp/x.sock").unwrap(),
            Addr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert!(Addr::parse("no-port").is_err());
        assert!(Addr::parse(":123").is_err());
        assert!(Addr::parse("host:notaport").is_err());
        assert!(Addr::parse("unix:").is_err());
    }

    #[test]
    fn display_round_trips() {
        for s in ["127.0.0.1:8080", "unix:/tmp/cypress.sock"] {
            assert_eq!(Addr::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn ephemeral_tcp_bind_reports_port() {
        let l = Listener::bind(&Addr::parse("127.0.0.1:0").unwrap()).unwrap();
        let Addr::Tcp(hp) = l.local_addr().unwrap() else {
            panic!("tcp expected")
        };
        let port: u16 = hp.rsplit_once(':').unwrap().1.parse().unwrap();
        assert_ne!(port, 0);
    }

    #[cfg(unix)]
    #[test]
    fn unix_listener_cleans_up_socket_file() {
        let path = std::env::temp_dir().join(format!("cypress-net-{}.sock", std::process::id()));
        let addr = Addr::Unix(path.clone());
        {
            let _l = Listener::bind(&addr).unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists(), "socket file must be removed on drop");
    }
}
