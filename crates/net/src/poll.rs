//! Readiness polling in pure std — the collector's event loops block here.
//!
//! The repo's offline-build rule forbids external crates, so instead of mio
//! we declare `poll(2)` directly with an `extern "C"` block (std already
//! links libc; this adds no dependency), mirroring the std-only discipline
//! of `cypress_runtime::ring`. Level-triggered `poll` is the right tool at
//! this scale: the fd set is rebuilt per wait, which is O(n) — exactly
//! `poll`'s own cost — and stays allocation-free after warmup because the
//! backing `Vec` is reused.
//!
//! [`Waker`] is the classic self-pipe: a nonblocking `UnixStream::pair`
//! whose read end sits in every poll set, so another thread can interrupt a
//! blocked `poll` by writing one byte. That is what replaces the old
//! `sleep(5ms)` accept/stats loops — the collector now sleeps *in the
//! kernel* until a socket or a peer loop has something for it.
//!
//! On non-unix targets the same API degrades to a short-timeout shim that
//! reports every registered fd as ready (the nonblocking reads/writes
//! sort out who actually was); correctness is preserved, efficiency is not.

use std::io;
use std::time::Duration;

#[cfg(unix)]
pub use std::os::unix::io::RawFd;
#[cfg(not(unix))]
pub type RawFd = i32;

#[cfg(unix)]
mod sys {
    use super::RawFd;
    use std::os::raw::{c_int, c_ulong};

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        // `nfds_t` is `unsigned long` on Linux; the count is tiny either
        // way, so the widest unsigned type is safe everywhere std links
        // this symbol.
        pub fn poll(fds: *mut pollfd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
}

/// A reusable, rebuilt-per-wait `poll(2)` fd set.
#[cfg(unix)]
pub struct PollSet {
    fds: Vec<sys::pollfd>,
}

#[cfg(unix)]
impl PollSet {
    pub fn new() -> PollSet {
        PollSet { fds: Vec::new() }
    }

    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Register interest; returns the slot index for the readiness queries.
    pub fn push(&mut self, fd: RawFd, read: bool, write: bool) -> usize {
        let mut events = 0i16;
        if read {
            events |= sys::POLLIN;
        }
        if write {
            events |= sys::POLLOUT;
        }
        self.fds.push(sys::pollfd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Block until at least one fd is ready or the timeout elapses
    /// (`None` = forever). Returns the number of ready fds.
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        let ms: std::os::raw::c_int = match timeout {
            None => -1,
            // Round up so a sub-millisecond deadline remainder never turns
            // into a zero-timeout busy spin.
            Some(d) => {
                d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as std::os::raw::c_int
            }
        };
        loop {
            let r = unsafe {
                sys::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as std::os::raw::c_ulong,
                    ms,
                )
            };
            if r >= 0 {
                return Ok(r as usize);
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    /// Readable, hung up, or errored — anything a read should react to
    /// (a read on a HUP/ERR fd surfaces the real error or EOF).
    pub fn readable(&self, i: usize) -> bool {
        self.fds[i].revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0
    }

    pub fn writable(&self, i: usize) -> bool {
        self.fds[i].revents & (sys::POLLOUT | sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0
    }
}

/// Degraded non-unix fallback: every registered fd reports ready after a
/// short sleep, and the caller's nonblocking I/O discovers the truth. Keeps
/// the collector compiling (and correct, if slow) off unix.
#[cfg(not(unix))]
pub struct PollSet {
    n: usize,
}

#[cfg(not(unix))]
impl PollSet {
    pub fn new() -> PollSet {
        PollSet { n: 0 }
    }
    pub fn clear(&mut self) {
        self.n = 0;
    }
    pub fn push(&mut self, _fd: RawFd, _read: bool, _write: bool) -> usize {
        self.n += 1;
        self.n - 1
    }
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        let cap = Duration::from_millis(10);
        std::thread::sleep(timeout.map_or(cap, |t| t.min(cap)));
        Ok(self.n)
    }
    pub fn readable(&self, _i: usize) -> bool {
        true
    }
    pub fn writable(&self, _i: usize) -> bool {
        true
    }
}

impl Default for PollSet {
    fn default() -> Self {
        PollSet::new()
    }
}

/// Self-pipe wakeup: `wake()` from any thread interrupts a `PollSet::wait`
/// that includes `fd()`. Writes are nonblocking and coalesce (a full pipe
/// already guarantees a pending wakeup), `drain()` empties the pipe.
#[cfg(unix)]
pub struct Waker {
    tx: std::os::unix::net::UnixStream,
    rx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Waker {
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.rx).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(not(unix))]
pub struct Waker;

#[cfg(not(unix))]
impl Waker {
    pub fn new() -> io::Result<Waker> {
        Ok(Waker)
    }
    pub fn fd(&self) -> RawFd {
        -1
    }
    pub fn wake(&self) {}
    pub fn drain(&self) {}
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poll_reports_readable_pipe() {
        let (mut a, mut b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut ps = PollSet::new();
        let i = ps.push(b.as_raw_fd(), true, false);
        // Nothing written yet: a zero-timeout wait sees nothing.
        assert_eq!(ps.wait(Some(Duration::from_millis(0))).unwrap(), 0);
        assert!(!ps.readable(i));
        a.write_all(b"x").unwrap();
        ps.clear();
        let i = ps.push(b.as_raw_fd(), true, false);
        assert_eq!(ps.wait(Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(ps.readable(i));
        let mut byte = [0u8; 1];
        b.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let w = Waker::new().unwrap();
        let mut ps = PollSet::new();
        let i = ps.push(w.fd(), true, false);
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            let wref = &w;
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                wref.wake();
            });
            // Without the wake this would sleep the full 10 s.
            assert_eq!(ps.wait(Some(Duration::from_secs(10))).unwrap(), 1);
        });
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(ps.readable(i));
        w.drain();
        // Drained: an immediate re-poll is quiet again.
        ps.clear();
        ps.push(w.fd(), true, false);
        assert_eq!(ps.wait(Some(Duration::from_millis(0))).unwrap(), 0);
    }

    #[test]
    fn wake_coalesces_without_blocking() {
        let w = Waker::new().unwrap();
        // Far more wakes than the pipe buffer holds: must never block.
        for _ in 0..1_000_000 {
            w.wake();
        }
        w.drain();
    }
}
