//! Live collector telemetry: the versioned `Stats` payload and the client
//! side that fetches it.
//!
//! A running collector (`cypress serve --stats-addr`) listens on a second
//! endpoint speaking the same framed transport as the job protocol, but a
//! trivial state machine: one `StatsRequest` in, one `Stats` out, done.
//! Keeping telemetry off the job listener means a monitoring poll can never
//! perturb the Hello/Events/Finish sequence, and the job protocol version
//! stays untouched.
//!
//! The payload is **self-versioned**: [`STATS_VERSION`] is the first byte of
//! the body and new fields only ever append, so an old `cypress stats` can
//! read a newer collector's leading fields and a new client rejects only
//! versions older than it knows. Collector-side measurements feeding the
//! quantiles use the ungated [`cypress_obs::Histogram::record`] path, so
//! `stats` works whether or not the daemon runs with `--metrics`.

use crate::proto::{read_frame, write_frame, Frame};
use crate::transport::{Addr, Stream};
use crate::NetError;
use cypress_trace::codec::{DecodeError, Decoder, Encoder};
use std::time::Duration;

/// Version of the `Stats` payload this build writes.
pub const STATS_VERSION: u8 = 1;

/// Upper bound on collection sizes inside a `Stats` payload (clients,
/// quantile rows); rejects absurd length prefixes before allocation.
const MAX_STATS_ITEMS: u64 = 1 << 20;

/// Where one client's submission stands, as the collector saw it last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientState {
    /// Mid-stream: events are arriving (or a CTT upload is in flight).
    Streaming,
    /// The rank is merged into the binomial tree.
    Merged,
    /// The connection died mid-submission; the partial session was
    /// discarded and a retry is expected.
    Aborted,
    /// A retry of an already-merged rank was acknowledged and dropped.
    Duplicate,
}

impl ClientState {
    pub fn code(self) -> u8 {
        match self {
            ClientState::Streaming => 0,
            ClientState::Merged => 1,
            ClientState::Aborted => 2,
            ClientState::Duplicate => 3,
        }
    }

    pub fn from_code(c: u8) -> Option<ClientState> {
        Some(match c {
            0 => ClientState::Streaming,
            1 => ClientState::Merged,
            2 => ClientState::Aborted,
            3 => ClientState::Duplicate,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            ClientState::Streaming => "streaming",
            ClientState::Merged => "merged",
            ClientState::Aborted => "aborted",
            ClientState::Duplicate => "duplicate",
        }
    }
}

/// One client (rank) the collector has heard from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientStat {
    pub rank: u32,
    pub state: ClientState,
    /// Events the collector received from this rank so far.
    pub events: u64,
}

/// Quantile summary of one collector-side histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileStat {
    pub name: String,
    pub count: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

/// A live snapshot of a running collector.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Payload version the collector wrote ([`STATS_VERSION`] here).
    pub version: u8,
    /// Nanoseconds since the collector started serving.
    pub uptime_ns: u64,
    /// Job size fixed by the first `Hello` (0 before any client connected).
    pub nprocs: u32,
    /// Ranks merged into the binomial tree.
    pub ranks_done: u32,
    /// Events received across all clients.
    pub events_total: u64,
    /// Receive rate over the whole uptime, milli-events/second
    /// (fixed-point ×1000 — the wire stays integer-only).
    pub events_per_sec_x1000: u64,
    /// Largest merged buddy block, as log2 of its rank count.
    pub merge_depth: u32,
    /// Partial merge blocks currently resident (≤ ⌈log2 P⌉ + 1).
    pub resident_blocks: u32,
    /// Per-client state, rank-sorted.
    pub clients: Vec<ClientStat>,
    /// Histogram quantile rows (batch sizes, merge step latency).
    pub quantiles: Vec<QuantileStat>,
}

impl Stats {
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(self.version);
        enc.put_uvar(self.uptime_ns);
        enc.put_uvar(self.nprocs as u64);
        enc.put_uvar(self.ranks_done as u64);
        enc.put_uvar(self.events_total);
        enc.put_uvar(self.events_per_sec_x1000);
        enc.put_uvar(self.merge_depth as u64);
        enc.put_uvar(self.resident_blocks as u64);
        enc.put_uvar(self.clients.len() as u64);
        for c in &self.clients {
            enc.put_uvar(c.rank as u64);
            enc.put_u8(c.state.code());
            enc.put_uvar(c.events);
        }
        enc.put_uvar(self.quantiles.len() as u64);
        for q in &self.quantiles {
            enc.put_str(&q.name);
            enc.put_uvar(q.count);
            enc.put_uvar(q.p50);
            enc.put_uvar(q.p90);
            enc.put_uvar(q.p99);
        }
        enc.finish()
    }

    /// Decode a payload. Accepts any version ≥ 1 (newer collectors only
    /// append fields, which a v1 reader leaves unread); rejects version 0.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Stats, DecodeError> {
        let bad = |m: &str| DecodeError(m.to_string());
        let version = dec.get_u8()?;
        if version == 0 {
            return Err(bad("stats payload version 0"));
        }
        let uptime_ns = dec.get_uvar()?;
        let nprocs = dec.get_uvar()? as u32;
        let ranks_done = dec.get_uvar()? as u32;
        let events_total = dec.get_uvar()?;
        let events_per_sec_x1000 = dec.get_uvar()?;
        let merge_depth = dec.get_uvar()? as u32;
        let resident_blocks = dec.get_uvar()? as u32;
        let nclients = dec.get_uvar()?;
        if nclients > MAX_STATS_ITEMS {
            return Err(bad("absurd stats client count"));
        }
        let mut clients = Vec::with_capacity(nclients as usize);
        for _ in 0..nclients {
            let rank = dec.get_uvar()? as u32;
            let code = dec.get_u8()?;
            let state =
                ClientState::from_code(code).ok_or_else(|| bad("bad stats client state"))?;
            let events = dec.get_uvar()?;
            clients.push(ClientStat {
                rank,
                state,
                events,
            });
        }
        let nq = dec.get_uvar()?;
        if nq > MAX_STATS_ITEMS {
            return Err(bad("absurd stats quantile count"));
        }
        let mut quantiles = Vec::with_capacity(nq as usize);
        for _ in 0..nq {
            quantiles.push(QuantileStat {
                name: dec.get_str()?,
                count: dec.get_uvar()?,
                p50: dec.get_uvar()?,
                p90: dec.get_uvar()?,
                p99: dec.get_uvar()?,
            });
        }
        // Version > STATS_VERSION may have appended fields; leave them
        // unread (the frame layer tolerates them via this path only).
        Ok(Stats {
            version,
            uptime_ns,
            nprocs,
            ranks_done,
            events_total,
            events_per_sec_x1000,
            merge_depth,
            resident_blocks,
            clients,
            quantiles,
        })
    }

    /// Human-readable rendering for `cypress stats`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "collector stats (v{}) — up {:.3}s\n",
            self.version,
            self.uptime_ns as f64 / 1e9
        ));
        out.push_str(&format!(
            "job: {}/{} ranks merged, {} events, {:.1} events/s\n",
            self.ranks_done,
            self.nprocs,
            self.events_total,
            self.events_per_sec_x1000 as f64 / 1000.0
        ));
        out.push_str(&format!(
            "merge: depth {} ({} ranks in largest block), {} resident block(s)\n",
            self.merge_depth,
            1u64 << self.merge_depth.min(63),
            self.resident_blocks
        ));
        if !self.clients.is_empty() {
            out.push_str("clients:\n");
            for c in &self.clients {
                out.push_str(&format!(
                    "  rank {:<5} {:<10} {:>10} events\n",
                    c.rank,
                    c.state.name(),
                    c.events
                ));
            }
        }
        for q in &self.quantiles {
            out.push_str(&format!(
                "{}: n={} p50={} p90={} p99={}\n",
                q.name, q.count, q.p50, q.p90, q.p99
            ));
        }
        out
    }

    /// One JSON object (hand-rolled — offline build, no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"version\":{},\"uptime_ns\":{},\"nprocs\":{},\"ranks_done\":{},\
             \"events_total\":{},\"events_per_sec_x1000\":{},\"merge_depth\":{},\
             \"resident_blocks\":{},\"clients\":[",
            self.version,
            self.uptime_ns,
            self.nprocs,
            self.ranks_done,
            self.events_total,
            self.events_per_sec_x1000,
            self.merge_depth,
            self.resident_blocks,
        ));
        for (i, c) in self.clients.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rank\":{},\"state\":\"{}\",\"events\":{}}}",
                c.rank,
                c.state.name(),
                c.events
            ));
        }
        out.push_str("],\"quantiles\":[");
        for (i, q) in self.quantiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Names are collector-chosen identifiers (no escaping needed).
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                q.name, q.count, q.p50, q.p90, q.p99
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Fetch a live snapshot from a collector's stats endpoint.
pub fn fetch_stats(addr: &Addr, timeout: Duration) -> Result<Stats, NetError> {
    let mut stream = Stream::connect(addr, timeout)?;
    stream.set_io_timeout(timeout)?;
    cypress_obs::trace_instant("net", "stats_fetch", 0);
    write_frame(&mut stream, &Frame::StatsRequest)?;
    match read_frame(&mut stream)? {
        Frame::Stats { stats } => Ok(stats),
        Frame::Error { code, message } => Err(NetError::Remote { code, message }),
        f => Err(NetError::Protocol(format!(
            "expected Stats, got {}",
            f.name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Stats {
        Stats {
            version: STATS_VERSION,
            uptime_ns: 1_234_567_890,
            nprocs: 8,
            ranks_done: 5,
            events_total: 40_000,
            events_per_sec_x1000: 32_400_500,
            merge_depth: 2,
            resident_blocks: 2,
            clients: vec![
                ClientStat {
                    rank: 0,
                    state: ClientState::Merged,
                    events: 8_000,
                },
                ClientStat {
                    rank: 1,
                    state: ClientState::Streaming,
                    events: 1_500,
                },
                ClientStat {
                    rank: 7,
                    state: ClientState::Aborted,
                    events: 12,
                },
            ],
            quantiles: vec![QuantileStat {
                name: "batch_events".into(),
                count: 79,
                p50: 512,
                p90: 512,
                p99: 512,
            }],
        }
    }

    #[test]
    fn stats_round_trip() {
        let s = sample();
        let bytes = s.encode();
        let mut dec = Decoder::new(&bytes);
        let got = Stats::decode(&mut dec).unwrap();
        assert!(dec.is_done());
        assert_eq!(got, s);
    }

    #[test]
    fn version_zero_rejected() {
        let mut s = sample();
        s.version = 0;
        let bytes = s.encode();
        assert!(Stats::decode(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn newer_version_with_appended_fields_still_reads() {
        let mut s = sample();
        s.version = STATS_VERSION + 1;
        let mut bytes = s.encode();
        // A future collector appends a field we do not know about.
        bytes.extend_from_slice(&[0x2a]);
        let mut dec = Decoder::new(&bytes);
        let got = Stats::decode(&mut dec).unwrap();
        assert_eq!(got.nprocs, 8);
        assert_eq!(got.clients.len(), 3);
        assert!(!dec.is_done(), "appended field left unread");
    }

    #[test]
    fn text_and_json_render() {
        let s = sample();
        let text = s.to_text();
        assert!(text.contains("5/8 ranks merged"));
        assert!(text.contains("rank 1"));
        assert!(text.contains("streaming"));
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ranks_done\":5"));
        assert!(json.contains("\"state\":\"aborted\""));
        assert!(json.contains("\"p99\":512"));
    }
}
