//! Smoke test: the `figures` harness binary runs its cheapest experiments
//! end-to-end and writes the CSV artifacts.

use std::process::Command;

fn figures() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_figures"));
    // Run in a scratch dir so `results/` doesn't pollute the repo root.
    let dir = std::env::temp_dir().join(format!("figures-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    c.current_dir(dir);
    c
}

#[test]
fn table1_runs_and_writes_csv() {
    let out = figures().arg("table1").output().expect("run figures");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table I"));
    for name in cypress_workloads::NPB_NAMES {
        assert!(stdout.contains(name), "missing row for {name}");
    }
}

#[test]
fn ablation_runs() {
    let out = figures().arg("ablation").output().expect("run figures");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rank-encoding=relative"));
    assert!(stdout.contains("window=2"));
}

#[test]
fn unknown_experiment_exits_nonzero() {
    let out = figures().arg("fig99").output().expect("run figures");
    assert!(!out.status.success());
}
