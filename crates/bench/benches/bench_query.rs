//! Compressed-domain vs decompress-then-analyze query cost, emitted as
//! `results/BENCH_query.json`.
//!
//! Two measurements:
//!
//! * `workloads` — the bundled benchmark skeletons: full query suite
//!   (volume matrix, per-op profile, per-rank totals, GID hot spots)
//!   evaluated symbolically on the CTTs vs the reference that decompresses
//!   every rank first. Every row asserts result equality.
//! * `scaling` — one stencil program with the outer loop trip count swept
//!   over decades at fixed rank count. The CTT is the same size at every
//!   point (the loop folds to the same records, only the iteration-count
//!   sequence changes), so compressed-domain query time stays flat while
//!   the decompress-then-analyze time grows with the event count — the
//!   O(|CTT|) vs O(events) gap this engine exists for.
//!
//! JSON schema (`bench_query/v1`):
//!
//! ```json
//! { "schema": "bench_query/v1",
//!   "workloads": [ { "name": "...", "nprocs": 8, "events": 123,
//!     "ctt_records": 45, "query_ns": 1.0, "decompress_analyze_ns": 9.0,
//!     "speedup": 9.0, "equal": true } ],
//!   "scaling": [ { "iters": 1000, "nprocs": 4, "events": 123,
//!     "ctt_records": 45, "query_ns": 1.0, "decompress_analyze_ns": 9.0,
//!     "speedup": 9.0 } ] }
//! ```

use cypress_bench::harness;
use cypress_core::{compress_trace, CompressConfig, Ctt};
use cypress_cst::{analyze_program, Cst, StaticInfo};
use cypress_minilang::{check_program, parse, Program};
use cypress_query::{query_by_decompression, query_ctts, QueryOptions, QueryResult};
use cypress_runtime::{trace_program_parallel, InterpConfig};
use cypress_workloads::{by_name, quick_procs, Scale};

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn compress_all(prog: &Program, info: &StaticInfo, nprocs: u32) -> Vec<Ctt> {
    let traces = trace_program_parallel(prog, info, nprocs, &InterpConfig::default(), workers())
        .expect("bench program runs");
    let cfg = CompressConfig::default();
    traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect()
}

fn results_equal(a: &QueryResult, b: &QueryResult) -> bool {
    a.matrix == b.matrix
        && a.profile == b.profile
        && a.totals == b.totals
        && a.hotspots == b.hotspots
        && a.loop_trips == b.loop_trips
}

struct Row {
    label: String,
    nprocs: u32,
    events: u64,
    ctt_records: u64,
    query_ns: f64,
    reference_ns: f64,
    equal: bool,
}

fn measure(label: &str, cst: &Cst, ctts: &[Ctt]) -> Row {
    let opts = QueryOptions::default();
    let q = query_ctts(cst, ctts, &opts).expect("query succeeds");
    let r = query_by_decompression(cst, ctts).expect("reference succeeds");
    let equal = results_equal(&q, &r);

    let nprocs = ctts.first().map(|c| c.nprocs).unwrap_or(0);
    let events: u64 = ctts.iter().map(|c| c.op_count()).sum();
    let ctt_records: u64 = ctts.iter().map(|c| c.record_count() as u64).sum();

    let query = harness::run(&format!("query/{label}/compressed"), || {
        query_ctts(cst, ctts, &opts).expect("query succeeds")
    });
    let reference = harness::run(&format!("query/{label}/decompress"), || {
        query_by_decompression(cst, ctts).expect("reference succeeds")
    });

    Row {
        label: label.to_owned(),
        nprocs,
        events,
        ctt_records,
        query_ns: query.mean_ns,
        reference_ns: reference.mean_ns,
        equal,
    }
}

fn bench_workload(name: &str) -> Row {
    let nprocs = quick_procs(name);
    let w = by_name(name, nprocs, Scale::Quick).unwrap();
    let (prog, info) = w.compile();
    let ctts = compress_all(&prog, &info, nprocs);
    measure(&format!("{name}/{nprocs}p"), &info.cst, &ctts)
}

/// Loop-heavy stencil whose event count scales with `iters` while its CTT
/// stays the same size.
fn scaling_src(iters: u32) -> String {
    format!(
        r#"fn main() {{
    let r = rank();
    let s = size();
    for it in 0..{iters} {{
        if r > 0 {{ send(r - 1, 8192, 0); }}
        if r < s - 1 {{ recv(r + 1, 8192, 0); }}
        if r < s - 1 {{ send(r + 1, 8192, 1); }}
        if r > 0 {{ recv(r - 1, 8192, 1); }}
        allreduce(64);
    }}
}}"#
    )
}

fn bench_scaling(iters: u32) -> Row {
    let nprocs = 4;
    let src = scaling_src(iters);
    let prog = parse(&src).unwrap();
    check_program(&prog).unwrap();
    let info = analyze_program(&prog);
    let ctts = compress_all(&prog, &info, nprocs);
    measure(&format!("scale/{iters}it"), &info.cst, &ctts)
}

fn row_json(r: &Row, key: &str, key_val: &str) -> String {
    format!(
        "{{{key}:{key_val},\"nprocs\":{},\"events\":{},\"ctt_records\":{},\
         \"query_ns\":{:.1},\"decompress_analyze_ns\":{:.1},\"speedup\":{:.3},\"equal\":{}}}",
        r.nprocs,
        r.events,
        r.ctt_records,
        r.query_ns,
        r.reference_ns,
        r.reference_ns / r.query_ns.max(1.0),
        r.equal,
    )
}

fn main() {
    let fast = std::env::var("CYPRESS_BENCH_FAST").is_ok();
    let names: &[&str] = if fast {
        &["jacobi", "cg"]
    } else {
        &["jacobi", "cg", "mg", "lu", "leslie3d"]
    };
    let iter_sweep: &[u32] = if fast {
        &[10, 100, 1000]
    } else {
        &[10, 100, 1000, 10000]
    };

    let workload_rows: Vec<Row> = names.iter().map(|n| bench_workload(n)).collect();
    let scaling_rows: Vec<Row> = iter_sweep.iter().map(|&i| bench_scaling(i)).collect();

    let mut json = String::from("{\"schema\":\"bench_query/v1\",\"workloads\":[");
    for (i, r) in workload_rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let name = r.label.split('/').next().unwrap_or(&r.label);
        json.push_str(&row_json(r, "\"name\"", &format!("\"{name}\"")));
    }
    json.push_str("],\"scaling\":[");
    for (i, (r, iters)) in scaling_rows.iter().zip(iter_sweep).enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&row_json(r, "\"iters\"", &iters.to_string()));
    }
    json.push_str("]}\n");

    let results = std::env::var("CYPRESS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_owned());
    let path = std::path::Path::new(&results).join("BENCH_query.json");
    cypress_obs::write_atomic(&path, json.as_bytes()).expect("write BENCH_query.json");
    println!("wrote {}", path.display());

    let unequal: Vec<&str> = workload_rows
        .iter()
        .chain(&scaling_rows)
        .filter(|r| !r.equal)
        .map(|r| r.label.as_str())
        .collect();
    assert!(
        unequal.is_empty(),
        "compressed-domain and decompressed query results diverged for: {unequal:?}"
    );
    // The headline gap: on the largest loop sweep the compressed-domain
    // query must be at least 5× faster than decompress-then-analyze.
    let largest = scaling_rows.last().expect("sweep is non-empty");
    let speedup = largest.reference_ns / largest.query_ns.max(1.0);
    assert!(
        speedup >= 5.0,
        "expected ≥5× speedup on {} (got {speedup:.2}×)",
        largest.label
    );
}
