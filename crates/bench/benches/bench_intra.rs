//! Criterion bench for Fig. 16: intra-process compression throughput of
//! CYPRESS vs ScalaTrace vs ScalaTrace-2 on representative workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cypress_baselines::{Scala2Config, Scala2Trace, ScalaConfig, ScalaTrace};
use cypress_bench::trace_workload;
use cypress_core::{compress_trace, CompressConfig};
use cypress_workloads::Scale;

fn bench_intra(c: &mut Criterion) {
    for name in ["lu", "mg", "sp"] {
        let t = trace_workload(name, cypress_workloads::quick_procs(name), Scale::Quick);
        let trace = &t.traces[t.traces.len() / 2];
        let events = trace.mpi_count() as u64;
        let mut g = c.benchmark_group(format!("intra/{name}"));
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(BenchmarkId::new("cypress", events), trace, |b, tr| {
            b.iter(|| compress_trace(&t.info.cst, tr, &CompressConfig::default()))
        });
        g.bench_with_input(BenchmarkId::new("scalatrace", events), trace, |b, tr| {
            b.iter(|| ScalaTrace::compress(tr, &ScalaConfig::default()))
        });
        g.bench_with_input(BenchmarkId::new("scalatrace2", events), trace, |b, tr| {
            b.iter(|| Scala2Trace::compress(tr, &Scala2Config::default()))
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_intra
}
criterion_main!(benches);
