//! Bench for Fig. 16: intra-process compression throughput of CYPRESS vs
//! ScalaTrace vs ScalaTrace-2 on representative workloads.

use cypress_baselines::{Scala2Config, Scala2Trace, ScalaConfig, ScalaTrace};
use cypress_bench::{harness, trace_workload};
use cypress_core::{compress_trace, CompressConfig};
use cypress_workloads::Scale;

fn main() {
    for name in ["lu", "mg", "sp"] {
        let t = trace_workload(name, cypress_workloads::quick_procs(name), Scale::Quick);
        let trace = &t.traces[t.traces.len() / 2];
        let events = trace.mpi_count();
        harness::run(&format!("intra/{name}/{events}ev/cypress"), || {
            compress_trace(&t.info.cst, trace, &CompressConfig::default())
        });
        harness::run(&format!("intra/{name}/{events}ev/scalatrace"), || {
            ScalaTrace::compress(trace, &ScalaConfig::default())
        });
        harness::run(&format!("intra/{name}/{events}ev/scalatrace2"), || {
            Scala2Trace::compress(trace, &Scala2Config::default())
        });
    }
}
