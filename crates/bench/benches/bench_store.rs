//! Trace-store and query-daemon cost, emitted as `results/BENCH_store.json`.
//!
//! Four series over a store directory of 1k+ containers (all clones of a
//! compressed jacobi job, so every open does real work — file read, image
//! CRC, section inflation, pooled CTT decode):
//!
//! * `open/cold` — open + first query with an LRU budget of one job, so
//!   every open misses and reloads from disk.
//! * `open/hot`  — open + query of a resident job: the LRU lookup is all
//!   that stands before the query. The headline assertion is that this is
//!   at least 10× below cold — the reason a *resident* daemon exists.
//! * `serve/warm` — round-robin queries over a resident working set.
//! * `serve/remote` — the same query through a loopback `queryd` daemon on
//!   a persistent connection (adds framing + TCP round trip).
//!
//! A final identity sweep queries bundled workloads through the local
//! engine, the store, and the daemon, asserting byte-identical answers.
//!
//! JSON schema (`bench_store/v1`):
//!
//! ```json
//! { "schema": "bench_store/v1", "jobs": 1024,
//!   "open":  [ { "mode": "cold", "open_query_ns": 1.0, "qps": 2.0 } ],
//!   "serve": [ { "mode": "warm", "open_query_ns": 1.0, "qps": 2.0 } ],
//!   "hot_vs_cold": 25.0,
//!   "workloads": [ { "name": "jacobi", "nprocs": 8, "identical": true } ],
//!   "store_stats": { "hits": 1, "misses": 1, "evictions": 1, "loads": 1 } }
//! ```

use cypress_bench::harness;
use cypress_core::{compress_trace, merge_all, CompressConfig};
use cypress_query::{query_container_bytes, QueryOptions};
use cypress_store::{JobStore, QueryClient, StoreConfig};
use cypress_trace::{Codec, Container, SectionKind};
use cypress_workloads::{by_name, quick_procs, Scale};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Compile, trace, and compress a bundled workload into a deflated
/// container image (CST + merged + per-rank sections).
fn build_image(name: &str) -> (Vec<u8>, u32) {
    let nprocs = quick_procs(name);
    let w = by_name(name, nprocs, Scale::Quick).unwrap();
    let (_, info) = w.compile();
    let traces = w.trace_parallel(workers()).expect("workload runs");
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    let merged = merge_all(&ctts);
    let mut c = Container::new(nprocs);
    c.push(SectionKind::CstText, None, info.cst.to_text().into_bytes());
    c.push(SectionKind::MergedCtt, None, merged.to_bytes());
    for ctt in &ctts {
        c.push(SectionKind::RankCtt, Some(ctt.rank), ctt.to_bytes());
    }
    (c.to_bytes_with(Some(cypress_deflate::Level::Fast)), nprocs)
}

struct TempStore(PathBuf);

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Populate `jobs` clone containers plus one `.cytc` per bundled workload.
fn populate(dir: &Path, image: &[u8], jobs: usize, workloads: &[(&str, Vec<u8>)]) {
    std::fs::create_dir_all(dir).unwrap();
    for i in 0..jobs {
        std::fs::write(dir.join(format!("job-{i:04}.cytc")), image).unwrap();
    }
    for (name, image) in workloads {
        std::fs::write(dir.join(format!("{name}.cytc")), image).unwrap();
    }
}

fn qps(mean_ns: f64) -> f64 {
    1e9 / mean_ns.max(1.0)
}

fn row(mode: &str, mean_ns: f64) -> String {
    format!(
        "{{\"mode\":\"{mode}\",\"open_query_ns\":{:.1},\"qps\":{:.1}}}",
        mean_ns,
        qps(mean_ns)
    )
}

fn main() {
    let fast = std::env::var("CYPRESS_BENCH_FAST").is_ok();
    let jobs: usize = if fast { 128 } else { 1024 };
    let working_set = 64.min(jobs);

    let (image, _) = build_image("jacobi");
    let workload_names: &[&str] = if fast {
        &["jacobi", "cg"]
    } else {
        &["jacobi", "cg", "dt", "mg"]
    };
    let workload_images: Vec<(&str, Vec<u8>)> = workload_names
        .iter()
        .map(|&n| (n, build_image(n).0))
        .collect();

    let dir = std::env::temp_dir().join(format!("cypress-bench-store-{}", std::process::id()));
    let _cleanup = TempStore(dir.clone());
    populate(&dir, &image, jobs, &workload_images);
    let opts = QueryOptions::default();

    // Cold: LRU budget of one job — every open is a miss and reloads.
    let cold_store = JobStore::new(
        &dir,
        StoreConfig {
            max_jobs: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let mut next = 0usize;
    let cold = harness::run("store/open/cold", || {
        let name = format!("job-{:04}", next % jobs);
        next += 1;
        cold_store
            .open(&name)
            .unwrap()
            .query(&opts)
            .expect("cold query")
    });

    // Hot: the job stays resident; open is an LRU lookup.
    let store = Arc::new(JobStore::new(&dir, StoreConfig::default()).unwrap());
    store.open("job-0000").unwrap();
    let hot = harness::run("store/open/hot", || {
        store
            .open("job-0000")
            .unwrap()
            .query(&opts)
            .expect("hot query")
    });

    // Warm working set: round-robin hits across `working_set` residents.
    for i in 0..working_set {
        store.open(&format!("job-{i:04}")).unwrap();
    }
    let mut rr = 0usize;
    let warm = harness::run("store/serve/warm", || {
        let name = format!("job-{:04}", rr % working_set);
        rr += 1;
        store.open(&name).unwrap().query(&opts).expect("warm query")
    });

    // Remote: the same hot query through a loopback daemon, one persistent
    // connection.
    let addr = cypress_net::Addr::parse("127.0.0.1:0").unwrap();
    let server = cypress_store::spawn(store.clone(), &addr).unwrap();
    let timeout = Duration::from_secs(20);
    let mut client = QueryClient::connect(server.addr(), timeout).unwrap();
    let remote = harness::run("store/serve/remote", || {
        client.query_raw("job-0000", &opts).expect("remote query")
    });

    // Identity sweep: local container query vs store vs daemon, per
    // bundled workload, byte-for-byte.
    let mut workload_rows = Vec::new();
    let mut all_identical = true;
    for &name in workload_names {
        let image = std::fs::read(dir.join(format!("{name}.cytc"))).unwrap();
        let local = query_container_bytes(&image, &opts).expect("local query");
        let via_store = store.open(name).unwrap().query(&opts).expect("store query");
        let via_daemon = QueryClient::connect(server.addr(), timeout)
            .unwrap()
            .query_raw(name, &opts)
            .expect("daemon query");
        let identical = via_store.to_bytes() == local.to_bytes() && via_daemon == local.to_bytes();
        all_identical &= identical;
        workload_rows.push(format!(
            "{{\"name\":\"{name}\",\"nprocs\":{},\"identical\":{identical}}}",
            local.nprocs
        ));
    }
    let stats = store.stats();
    server.stop();

    let hot_vs_cold = cold.mean_ns / hot.mean_ns.max(1.0);
    let mut json = format!("{{\"schema\":\"bench_store/v1\",\"jobs\":{jobs},\"open\":[");
    json.push_str(&row("cold", cold.mean_ns));
    json.push(',');
    json.push_str(&row("hot", hot.mean_ns));
    json.push_str("],\"serve\":[");
    json.push_str(&row("warm", warm.mean_ns));
    json.push(',');
    json.push_str(&row("remote", remote.mean_ns));
    json.push_str(&format!(
        "],\"hot_vs_cold\":{hot_vs_cold:.3},\"workloads\":["
    ));
    json.push_str(&workload_rows.join(","));
    json.push_str(&format!(
        "],\"store_stats\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"loads\":{}}}}}\n",
        stats.hits, stats.misses, stats.evictions, stats.loads
    ));

    let results = std::env::var("CYPRESS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_owned());
    let path = std::path::Path::new(&results).join("BENCH_store.json");
    cypress_obs::write_atomic(&path, json.as_bytes()).expect("write BENCH_store.json");
    println!("wrote {}", path.display());

    assert!(all_identical, "store/daemon answers diverged from local");
    // The resident-daemon claim: a hot open+query must beat a cold
    // open+query by at least an order of magnitude.
    assert!(
        hot_vs_cold >= 10.0,
        "expected hot open+query ≥10× below cold (got {hot_vs_cold:.1}×)"
    );
}
