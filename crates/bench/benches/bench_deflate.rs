//! Criterion bench for the gzip substrate: DEFLATE throughput on trace-like
//! data (feeds the "+Gzip" series of Fig. 15/19).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cypress_bench::trace_workload;
use cypress_deflate::{deflate, gzip_compress, gzip_decompress, Level};
use cypress_trace::raw::encode_mpi_events;
use cypress_workloads::Scale;

fn bench_deflate(c: &mut Criterion) {
    let t = trace_workload("lu", 8, Scale::Quick);
    let blob = encode_mpi_events(&t.traces[3]);
    let mut g = c.benchmark_group("deflate");
    g.throughput(Throughput::Bytes(blob.len() as u64));
    for level in [Level::Fast, Level::Default, Level::Best] {
        g.bench_with_input(
            BenchmarkId::new("compress", format!("{level:?}")),
            &blob,
            |b, d| b.iter(|| deflate(d, level)),
        );
    }
    let z = gzip_compress(&blob, Level::Default);
    g.bench_with_input(BenchmarkId::new("gzip_round_trip", blob.len()), &z, |b, z| {
        b.iter(|| gzip_decompress(z).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_deflate
}
criterion_main!(benches);
