//! Bench for the gzip substrate: DEFLATE throughput on trace-like data
//! (feeds the "+Gzip" series of Fig. 15/19).

use cypress_bench::{harness, trace_workload};
use cypress_deflate::{deflate, gzip_compress, gzip_decompress, Level};
use cypress_trace::raw::encode_mpi_events;
use cypress_workloads::Scale;

fn main() {
    let t = trace_workload("lu", 8, Scale::Quick);
    let blob = encode_mpi_events(&t.traces[3]);
    println!("input blob: {} bytes", blob.len());
    for level in [Level::Fast, Level::Default, Level::Best] {
        harness::run(&format!("deflate/compress/{level:?}"), || {
            deflate(&blob, level)
        });
    }
    let z = gzip_compress(&blob, Level::Default);
    harness::run("deflate/gzip_decompress", || gzip_decompress(&z).unwrap());
}
