//! Bench pinning the "near-zero-cost when disabled" property of the
//! observability layer (ISSUE 1 acceptance criterion: the instrumented
//! compress hot path with metrics disabled must be within noise — <5% — of
//! its enabled-free cost), plus the ISSUE 6 tracing overhead gate:
//! tracing-disabled must stay <1% and tracing-enabled <5% of the obs-off
//! baseline on the compress hot path, or the bench exits nonzero so
//! `scripts/check.sh` fails.
//!
//! Compares the intra-process compress hot path with metrics disabled vs
//! enabled, and micro-benches the raw primitives. There is no
//! un-instrumented build to compare against in-tree, so the disabled run IS
//! the baseline; the check is that disabled-vs-enabled shows a measurable
//! gap while disabled-vs-disabled reruns agree within noise, and the
//! primitive costs stay in the single-nanosecond range.

use cypress_bench::{harness, trace_workload};
use cypress_core::{compress_trace, CompressConfig};
use cypress_workloads::Scale;

fn main() {
    let t = trace_workload("lu", 8, Scale::Quick);
    let trace = &t.traces[t.traces.len() / 2];

    cypress_obs::set_enabled(false);
    let disabled = harness::run("obs/compress/disabled", || {
        compress_trace(&t.info.cst, trace, &CompressConfig::default())
    });
    let disabled2 = harness::run("obs/compress/disabled_rerun", || {
        compress_trace(&t.info.cst, trace, &CompressConfig::default())
    });
    cypress_obs::set_enabled(true);
    let enabled = harness::run("obs/compress/enabled", || {
        compress_trace(&t.info.cst, trace, &CompressConfig::default())
    });
    cypress_obs::set_enabled(false);

    // Primitive costs.
    let m = cypress_obs::scope("bench-obs");
    let c = m.counter("prim_counter");
    let h = m.histogram("prim_hist", &cypress_obs::TIME_BOUNDS_NS);
    harness::run("obs/primitive/counter_disabled_x1000", || {
        for _ in 0..1000 {
            c.inc();
        }
    });
    cypress_obs::set_enabled(true);
    harness::run("obs/primitive/counter_enabled_x1000", || {
        for _ in 0..1000 {
            c.inc();
        }
    });
    harness::run("obs/primitive/histogram_observe_x1000", || {
        for i in 0..1000u64 {
            h.observe(i * 997);
        }
    });
    cypress_obs::set_enabled(false);

    // Disabled tracing primitives: the probes are compiled into every hot
    // path, so their disabled cost must be branch-and-return.
    harness::run("obs/primitive/trace_span_disabled_x1000", || {
        for _ in 0..1000 {
            let _s = cypress_obs::trace_span("bench", "noop");
        }
    });
    cypress_obs::set_trace_enabled(true);
    harness::run("obs/primitive/trace_span_enabled_x1000", || {
        for _ in 0..1000 {
            let _s = cypress_obs::trace_span("bench", "noop");
        }
        // Keep the per-thread ring from saturating so every span pays the
        // real record cost, not the cheaper overflow-drop path.
        cypress_obs::trace_reset();
    });
    cypress_obs::set_trace_enabled(false);

    // Compare minima: the min over samples is the standard robust estimator
    // for "true" cost under scheduler jitter (means absorb one slow sample).
    let noise =
        (disabled.min_ns as f64 - disabled2.min_ns as f64).abs() / disabled.min_ns as f64 * 100.0;
    let delta = (enabled.min_ns as f64 - disabled.min_ns as f64) / disabled.min_ns as f64 * 100.0;
    println!();
    println!("disabled rerun spread (min): {noise:.2}%  (measurement noise floor)");
    println!("enabled vs disabled (min):   {delta:+.2}%");
    // The acceptance gate: disabled-instrumentation cost is within noise.
    if noise > 5.0 {
        println!("WARNING: noise floor above 5% — rerun on a quieter machine");
    } else if delta.abs() <= noise.max(5.0) {
        println!("OK: enabled-vs-disabled delta is within the noise floor");
    }

    // ------------------------------------------------------------------
    // ISSUE 6 tracing overhead gate, versus the obs-off baseline (metrics
    // AND tracing both disabled). One noisy sample must not fail CI, so
    // each comparison gets up to three attempts and gates on min-of-mins.
    // ------------------------------------------------------------------
    println!();
    let gate = |label: &str, limit_pct: f64, trace_on: bool| -> bool {
        for attempt in 0..3 {
            cypress_obs::set_trace_enabled(false);
            let base = harness::run(&format!("obs/gate/{label}/baseline"), || {
                compress_trace(&t.info.cst, trace, &CompressConfig::default())
            });
            cypress_obs::set_trace_enabled(trace_on);
            let probed = harness::run(&format!("obs/gate/{label}/measured"), || {
                compress_trace(&t.info.cst, trace, &CompressConfig::default())
            });
            cypress_obs::set_trace_enabled(false);
            cypress_obs::trace_reset();
            let pct = (probed.min_ns - base.min_ns) / base.min_ns * 100.0;
            println!("gate {label}: {pct:+.2}% (limit {limit_pct}%, attempt {attempt})");
            if pct <= limit_pct {
                return true;
            }
        }
        false
    };
    let ok_disabled = gate("tracing_disabled_lt1pct", 1.0, false);
    let ok_enabled = gate("tracing_enabled_lt5pct", 5.0, true);
    if !ok_disabled || !ok_enabled {
        println!("FAIL: tracing overhead gate breached");
        std::process::exit(1);
    }
    println!("OK: tracing overhead within gates (<1% disabled, <5% enabled)");
}
