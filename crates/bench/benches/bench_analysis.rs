//! CTT-native analysis cost vs the decompress-then-simulate oracle,
//! emitted as `results/BENCH_analysis.json`.
//!
//! Two measurements:
//!
//! * `workloads` — bundled benchmark skeletons: the full analysis suite
//!   (LogGP replay prediction + late-sender wait states) evaluated on the
//!   CTT via symbolic lowering vs the oracle that decompresses every rank
//!   first and simulates the flat op streams. Every row asserts the two
//!   reports agree exactly (prediction, per-rank waits, wait sites).
//! * `scaling` — one stencil program with the outer loop trip count swept
//!   over decades at fixed rank count. The CTT is the same size at every
//!   point, the loop lowers symbolically, and the simulator extrapolates
//!   steady-state trips arithmetically — so CTT-native analysis time stays
//!   flat while the oracle grows linearly with the event count. The run
//!   asserts the ≥100× gap at the 10 000-trip point.
//!
//! JSON schema (`bench_analysis/v1`):
//!
//! ```json
//! { "schema": "bench_analysis/v1",
//!   "workloads": [ { "name": "...", "nprocs": 8, "events": 123,
//!     "analyze_ns": 1.0, "oracle_ns": 9.0, "speedup": 9.0,
//!     "equal": true } ],
//!   "scaling": [ { "trips": 1000, "nprocs": 4, "events": 123,
//!     "fed_ops": 12, "extrapolated_trips": 990, "analyze_ns": 1.0,
//!     "oracle_ns": 9.0, "speedup": 9.0, "equal": true } ] }
//! ```

use cypress_analysis::{analyze_by_decompression, analyze_ctts, AnalyzeOptions, AnalyzeReport};
use cypress_bench::harness;
use cypress_core::{compress_trace, CompressConfig, Ctt};
use cypress_cst::{analyze_program, Cst, StaticInfo};
use cypress_minilang::{check_program, parse, Program};
use cypress_runtime::{trace_program_parallel, InterpConfig};
use cypress_simmpi::LogGp;
use cypress_workloads::{by_name, quick_procs, Scale};

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn compress_all(prog: &Program, info: &StaticInfo, nprocs: u32) -> Vec<Ctt> {
    let traces = trace_program_parallel(prog, info, nprocs, &InterpConfig::default(), workers())
        .expect("bench program runs");
    let cfg = CompressConfig::default();
    traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect()
}

/// The analyses must agree exactly; effort stats legitimately differ.
fn reports_equal(a: &AnalyzeReport, b: &AnalyzeReport) -> bool {
    a.nprocs == b.nprocs
        && a.measured_app_ns == b.measured_app_ns
        && a.predicted == b.predicted
        && a.waits == b.waits
}

struct Row {
    label: String,
    nprocs: u32,
    events: u64,
    fed_ops: u64,
    extrapolated_trips: u64,
    analyze_ns: f64,
    oracle_ns: f64,
    equal: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.oracle_ns / self.analyze_ns.max(1.0)
    }
}

fn measure(label: &str, cst: &Cst, ctts: &[Ctt]) -> Row {
    let model = LogGp::default();
    let opts = AnalyzeOptions::default();
    let native = analyze_ctts(cst, ctts, &model, &opts).expect("analysis succeeds");
    let oracle = analyze_by_decompression(cst, ctts, &model, &opts).expect("oracle succeeds");
    let equal = reports_equal(&native, &oracle);

    let nprocs = ctts.first().map(|c| c.nprocs).unwrap_or(0);
    let events: u64 = ctts.iter().map(|c| c.op_count()).sum();

    let analyze = harness::run(&format!("analysis/{label}/ctt-native"), || {
        analyze_ctts(cst, ctts, &model, &opts).expect("analysis succeeds")
    });
    let reference = harness::run(&format!("analysis/{label}/oracle"), || {
        analyze_by_decompression(cst, ctts, &model, &opts).expect("oracle succeeds")
    });

    Row {
        label: label.to_owned(),
        nprocs,
        events,
        fed_ops: native.stats.fed_ops,
        extrapolated_trips: native.stats.extrapolated_trips,
        analyze_ns: analyze.mean_ns,
        oracle_ns: reference.mean_ns,
        equal,
    }
}

fn bench_workload(name: &str) -> Row {
    let nprocs = quick_procs(name);
    let w = by_name(name, nprocs, Scale::Quick).unwrap();
    let (prog, info) = w.compile();
    let ctts = compress_all(&prog, &info, nprocs);
    measure(&format!("{name}/{nprocs}p"), &info.cst, &ctts)
}

/// Steady-state ring stencil: every rank does the same work each trip, so
/// the loop lowers symbolically and the replay reaches a uniform-delta
/// quiescent cycle the simulator can extrapolate. Event count scales with
/// `trips`; the CTT does not.
fn scaling_src(trips: u32) -> String {
    format!(
        r#"fn main() {{
    let r = rank();
    let s = size();
    for it in 0..{trips} {{
        if r > 0 {{ send(r - 1, 8192, 0); }}
        if r < s - 1 {{ recv(r + 1, 8192, 0); }}
        if r < s - 1 {{ send(r + 1, 8192, 1); }}
        if r > 0 {{ recv(r - 1, 8192, 1); }}
        allreduce(64);
    }}
}}"#
    )
}

fn bench_scaling(trips: u32) -> Row {
    let nprocs = 4;
    let src = scaling_src(trips);
    let prog = parse(&src).unwrap();
    check_program(&prog).unwrap();
    let info = analyze_program(&prog);
    let ctts = compress_all(&prog, &info, nprocs);
    measure(&format!("scale/{trips}tr"), &info.cst, &ctts)
}

fn row_json(r: &Row, key: &str, key_val: &str) -> String {
    format!(
        "{{{key}:{key_val},\"nprocs\":{},\"events\":{},\"fed_ops\":{},\
         \"extrapolated_trips\":{},\"analyze_ns\":{:.1},\"oracle_ns\":{:.1},\
         \"speedup\":{:.3},\"equal\":{}}}",
        r.nprocs,
        r.events,
        r.fed_ops,
        r.extrapolated_trips,
        r.analyze_ns,
        r.oracle_ns,
        r.speedup(),
        r.equal,
    )
}

fn main() {
    let fast = std::env::var("CYPRESS_BENCH_FAST").is_ok();
    let names: &[&str] = if fast {
        &["jacobi", "cg"]
    } else {
        &["jacobi", "cg", "mg", "lu", "leslie3d"]
    };
    // The 10k point carries the headline flat-vs-linear assertion, so the
    // sweep keeps it even in fast mode.
    let trip_sweep: &[u32] = &[10, 100, 1000, 10_000];

    let workload_rows: Vec<Row> = names.iter().map(|n| bench_workload(n)).collect();
    let scaling_rows: Vec<Row> = trip_sweep.iter().map(|&t| bench_scaling(t)).collect();

    let mut json = String::from("{\"schema\":\"bench_analysis/v1\",\"workloads\":[");
    for (i, r) in workload_rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let name = r.label.split('/').next().unwrap_or(&r.label);
        json.push_str(&row_json(r, "\"name\"", &format!("\"{name}\"")));
    }
    json.push_str("],\"scaling\":[");
    for (i, (r, trips)) in scaling_rows.iter().zip(trip_sweep).enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&row_json(r, "\"trips\"", &trips.to_string()));
    }
    json.push_str("]}\n");

    let results = std::env::var("CYPRESS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_owned());
    let path = std::path::Path::new(&results).join("BENCH_analysis.json");
    cypress_obs::write_atomic(&path, json.as_bytes()).expect("write BENCH_analysis.json");
    println!("wrote {}", path.display());

    let unequal: Vec<&str> = workload_rows
        .iter()
        .chain(&scaling_rows)
        .filter(|r| !r.equal)
        .map(|r| r.label.as_str())
        .collect();
    assert!(
        unequal.is_empty(),
        "CTT-native and oracle analysis reports diverged for: {unequal:?}"
    );
    // Flat vs linear: at 10k trips the CTT-native prediction must beat the
    // decompress-then-simulate oracle by at least 100×.
    let largest = scaling_rows.last().expect("sweep is non-empty");
    assert!(
        largest.speedup() >= 100.0,
        "expected ≥100× speedup on {} (got {:.2}×)",
        largest.label,
        largest.speedup()
    );
    // And the native cost must actually be flat: the 10k point may cost at
    // most 3× the 10-trip point (same CTT, same lowering, same steady
    // cycle).
    let smallest = scaling_rows.first().expect("sweep is non-empty");
    assert!(
        largest.analyze_ns <= 3.0 * smallest.analyze_ns.max(1.0),
        "CTT-native cost not flat in trips: {:.0} ns at {} vs {:.0} ns at {}",
        largest.analyze_ns,
        largest.label,
        smallest.analyze_ns,
        smallest.label
    );
}
