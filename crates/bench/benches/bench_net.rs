//! Networked collection vs the local pipeline, sweeping client counts and
//! topologies, emitted as `results/BENCH_net.json`.
//!
//! Each sweep point runs the same stencil program two ways: the **local**
//! path (work-stealing pool, sessions, `merge_all_parallel`) and the
//! **loopback** path over the framed wire protocol — either **flat** (every
//! client straight into one collector's event loops) or **tree** (clients
//! through a tier of relay collectors that forward merged buddy blocks to
//! the root). The merged encodings must be byte-identical
//! (`identical_merged_bytes` — the run fails otherwise), so the sweep
//! isolates pure networking + framing overhead at fleet-ish client counts.
//!
//! JSON schema (`bench_net/v2`), one object per point under `sweeps`:
//!
//! ```json
//! { "schema": "bench_net/v2",
//!   "sweeps": [ { "topology": "flat", "clients": 64, "relays": 0,
//!     "events": 123, "merged_bytes": 456, "net_ns": 1.0, "local_ns": 1.0,
//!     "net_vs_local": 1.2, "events_per_sec": 1.0e6,
//!     "identical_merged_bytes": true } ] }
//! ```
//!
//! v1 measured 2–32 clients on the thread-per-client collector, whose
//! per-FinAck round-trips under Nagle + delayed-ACK put a ~45 ms floor on
//! every point. v2 sweeps 64–256 clients against the multiplexed event-loop
//! collector (pipelined frames, single end-of-stream round-trip), flat and
//! through a relay tree.

use cypress_bench::harness;
use cypress_core::{merge_all_parallel, CompressConfig, CompressSession, SessionConfig};
use cypress_cst::analyze_program;
use cypress_minilang::{check_program, parse, Program};
use cypress_net::{
    spawn_tree, submit_stream, Addr, ClientConfig, Collector, CollectorConfig, TreeConfig,
};
use cypress_runtime::{run_rank_with_sink, run_ranks, InterpConfig};
use cypress_trace::codec::Codec;
use std::time::Duration;

const MERGE_THREADS: usize = 4;
const TREE_RELAYS: u32 = 8;

const STENCIL: &str = r#"fn main() {
    for it in 0..60 {
        let up = isend((rank() + 1) % size(), 1024, 1);
        let dn = irecv((rank() + size() - 1) % size(), 1024, 1);
        waitall(up, dn);
        if it % 6 == 0 { allreduce(64); }
    }
    barrier();
}"#;

struct Row {
    topology: &'static str,
    clients: u32,
    relays: u32,
    events: u64,
    merged_bytes: usize,
    net_ns: f64,
    local_ns: f64,
    identical_merged_bytes: bool,
}

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn local_once(
    prog: &Program,
    info: &cypress_cst::StaticInfo,
    nprocs: u32,
) -> (cypress_core::MergedCtt, u64) {
    let per_rank = run_ranks(nprocs, workers(), |rank| {
        let mut s = CompressSession::new(
            &info.cst,
            rank,
            nprocs,
            CompressConfig::default(),
            SessionConfig::default(),
        );
        let app_time =
            run_rank_with_sink(prog, info, rank, nprocs, &InterpConfig::default(), &mut s)
                .expect("rank failed");
        s.finish(app_time)
    });
    let (ctts, stats): (Vec<_>, Vec<_>) = per_rank.into_iter().unzip();
    let events = stats.iter().map(|s| s.mpi_events).sum();
    (merge_all_parallel(&ctts, MERGE_THREADS), events)
}

fn submit_all<'a>(
    leaf_of: impl Fn(u32) -> &'a Addr + Sync,
    prog: &Program,
    info: &cypress_cst::StaticInfo,
    nprocs: u32,
) {
    let cst_text = info.cst.to_text();
    std::thread::scope(|s| {
        for rank in 0..nprocs {
            let (leaf_of, prog, info, cst_text) = (&leaf_of, prog, info, &cst_text);
            s.spawn(move || {
                submit_stream(
                    leaf_of(rank),
                    &ClientConfig::default(),
                    rank,
                    nprocs,
                    cst_text,
                    |sink| {
                        run_rank_with_sink(prog, info, rank, nprocs, &InterpConfig::default(), {
                            &mut &mut *sink
                        })
                        .map_err(|e| e.to_string())
                    },
                )
                .unwrap();
            });
        }
    });
}

fn net_once_flat(
    prog: &Program,
    info: &cypress_cst::StaticInfo,
    nprocs: u32,
) -> cypress_core::MergedCtt {
    let collector = Collector::bind(&Addr::parse("127.0.0.1:0").unwrap()).unwrap();
    let addr = collector.local_addr().unwrap();
    let cfg = CollectorConfig {
        keep_rank_ctts: false,
        deadline: Some(Duration::from_secs(120)),
        ..CollectorConfig::default()
    };
    let server = std::thread::spawn(move || collector.run(&cfg).unwrap());
    submit_all(|_| &addr, prog, info, nprocs);
    server.join().unwrap().merged
}

fn net_once_tree(
    prog: &Program,
    info: &cypress_cst::StaticInfo,
    nprocs: u32,
) -> cypress_core::MergedCtt {
    let tree = spawn_tree(
        &Addr::parse("127.0.0.1:0").unwrap(),
        &TreeConfig {
            relays: TREE_RELAYS,
            nprocs,
            collector: CollectorConfig {
                keep_rank_ctts: false,
                deadline: Some(Duration::from_secs(120)),
                ..CollectorConfig::default()
            },
            client: ClientConfig::default(),
        },
    )
    .unwrap();
    submit_all(|rank| tree.leaf_for_rank(rank), prog, info, nprocs);
    tree.join().unwrap().merged
}

fn bench_point(topology: &'static str, nprocs: u32) -> Row {
    let prog = parse(STENCIL).unwrap();
    check_program(&prog).unwrap();
    let info = analyze_program(&prog);
    let net_once = |prog: &Program, info: &cypress_cst::StaticInfo, n: u32| match topology {
        "flat" => net_once_flat(prog, info, n),
        _ => net_once_tree(prog, info, n),
    };

    let (local_merged, events) = local_once(&prog, &info, nprocs);
    let net_merged = net_once(&prog, &info, nprocs);
    let identical = local_merged.to_bytes() == net_merged.to_bytes();

    let local = harness::run(&format!("net/{topology}/{nprocs}clients/local"), || {
        local_once(&prog, &info, nprocs)
    });
    let net = harness::run(&format!("net/{topology}/{nprocs}clients/loopback"), || {
        net_once(&prog, &info, nprocs)
    });

    Row {
        topology,
        clients: nprocs,
        relays: if topology == "tree" { TREE_RELAYS } else { 0 },
        events,
        merged_bytes: local_merged.to_bytes().len(),
        net_ns: net.mean_ns,
        local_ns: local.mean_ns,
        identical_merged_bytes: identical,
    }
}

fn main() {
    let fast = std::env::var("CYPRESS_BENCH_FAST").is_ok();
    let flat: &[u32] = if fast {
        &[2, 64]
    } else {
        &[2, 8, 64, 128, 256]
    };
    let tree: &[u32] = if fast { &[64] } else { &[64, 128, 256] };
    let mut rows: Vec<Row> = flat.iter().map(|&n| bench_point("flat", n)).collect();
    rows.extend(tree.iter().map(|&n| bench_point("tree", n)));

    let mut json = String::from("{\"schema\":\"bench_net/v2\",\"sweeps\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"topology\":\"{}\",\"clients\":{},\"relays\":{},\"events\":{},\
             \"merged_bytes\":{},\"net_ns\":{:.1},\"local_ns\":{:.1},\
             \"net_vs_local\":{:.4},\"events_per_sec\":{:.1},\
             \"identical_merged_bytes\":{}}}",
            r.topology,
            r.clients,
            r.relays,
            r.events,
            r.merged_bytes,
            r.net_ns,
            r.local_ns,
            r.net_ns / r.local_ns.max(1.0),
            r.events as f64 / (r.net_ns / 1e9),
            r.identical_merged_bytes,
        ));
    }
    json.push_str("]}\n");

    let results = std::env::var("CYPRESS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_owned());
    let path = std::path::Path::new(&results).join("BENCH_net.json");
    cypress_obs::write_atomic(&path, json.as_bytes()).expect("write BENCH_net.json");
    println!("wrote {}", path.display());

    let broken: Vec<String> = rows
        .iter()
        .filter(|r| !r.identical_merged_bytes)
        .map(|r| format!("{}/{}", r.topology, r.clients))
        .collect();
    assert!(
        broken.is_empty(),
        "networked and local merged encodings diverged at: {broken:?}"
    );
}
