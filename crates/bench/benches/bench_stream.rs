//! Streaming vs batch compression: throughput, resident footprint, and the
//! equivalence check, emitted as `results/BENCH_stream.json`.
//!
//! The streaming path runs each rank's interpreter with a `CompressSession`
//! sink on the work-stealing pool — events land in the CTT as they happen
//! and the raw trace never materializes. The batch path records raw traces
//! first (`trace_program_parallel`), then compresses offline. Both merge
//! with the same thread count, so the merged encodings must be
//! byte-identical (`identical_merged_bytes` in the JSON — CI fails the run
//! if any workload reports `false`).
//!
//! JSON schema (`bench_stream/v1`), one object per workload under
//! `workloads`:
//!
//! ```json
//! { "schema": "bench_stream/v1",
//!   "workloads": [ { "name": "...", "nprocs": 8,
//!     "events": 123, "events_per_sec": 1.0e6,
//!     "peak_resident_ctt_bytes": 4096, "raw_trace_bytes": 99999,
//!     "stream_ns": 1.0, "batch_ns": 1.0, "stream_vs_batch": 1.05,
//!     "identical_merged_bytes": true } ] }
//! ```

use cypress_bench::harness;
use cypress_core::{
    compress_trace, merge_all_parallel, CompressConfig, CompressSession, SessionConfig,
};
use cypress_runtime::{run_rank_with_sink, run_ranks, trace_program_parallel, InterpConfig};
use cypress_trace::codec::Codec;
use cypress_workloads::{by_name, quick_procs, Scale};

const MERGE_THREADS: usize = 4;

struct Row {
    name: String,
    nprocs: u32,
    events: u64,
    events_per_sec: f64,
    peak_resident_ctt_bytes: usize,
    raw_trace_bytes: usize,
    stream_ns: f64,
    batch_ns: f64,
    identical_merged_bytes: bool,
}

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn bench_workload(name: &str) -> Row {
    let nprocs = quick_procs(name);
    let w = by_name(name, nprocs, Scale::Quick).unwrap();
    let (prog, info) = w.compile();
    let icfg = InterpConfig::default();
    let ccfg = CompressConfig::default();

    // Streaming: interpreter → session sink, raw trace never materializes.
    let stream_once = || {
        let per_rank = run_ranks(nprocs, workers(), |rank| {
            let mut s = CompressSession::new(
                &info.cst,
                rank,
                nprocs,
                ccfg.clone(),
                SessionConfig::default(),
            );
            let app_time = run_rank_with_sink(&prog, &info, rank, nprocs, &icfg, &mut s)
                .expect("workload rank failed");
            s.finish(app_time)
        });
        let (ctts, stats): (Vec<_>, Vec<_>) = per_rank.into_iter().unzip();
        (merge_all_parallel(&ctts, MERGE_THREADS), stats)
    };

    // Batch: record everything, then compress offline.
    let batch_once = || {
        let traces = trace_program_parallel(&prog, &info, nprocs, &icfg, workers())
            .expect("workload failed");
        let raw_bytes: usize = traces.iter().map(|t| t.to_bytes().len()).sum();
        let ctts: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &ccfg))
            .collect();
        (merge_all_parallel(&ctts, MERGE_THREADS), raw_bytes)
    };

    let (stream_merged, stats) = stream_once();
    let (batch_merged, raw_trace_bytes) = batch_once();
    let identical = stream_merged.to_bytes() == batch_merged.to_bytes();

    let events: u64 = stats.iter().map(|s| s.events).sum();
    let peak = stats.iter().map(|s| s.peak_ctt_bytes).max().unwrap_or(0);

    let stream = harness::run(&format!("stream/{name}/{nprocs}p/online"), stream_once);
    let batch = harness::run(&format!("stream/{name}/{nprocs}p/batch"), batch_once);

    Row {
        name: name.to_owned(),
        nprocs,
        events,
        events_per_sec: events as f64 / (stream.mean_ns / 1e9),
        peak_resident_ctt_bytes: peak,
        raw_trace_bytes,
        stream_ns: stream.mean_ns,
        batch_ns: batch.mean_ns,
        identical_merged_bytes: identical,
    }
}

fn main() {
    let names: &[&str] = if std::env::var("CYPRESS_BENCH_FAST").is_ok() {
        &["jacobi", "cg", "mg"]
    } else {
        &[
            "jacobi", "bt", "cg", "dt", "ep", "ft", "lu", "mg", "sp", "leslie3d",
        ]
    };
    let rows: Vec<Row> = names.iter().map(|n| bench_workload(n)).collect();

    let mut json = String::from("{\"schema\":\"bench_stream/v1\",\"workloads\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"nprocs\":{},\"events\":{},\"events_per_sec\":{:.1},\
             \"peak_resident_ctt_bytes\":{},\"raw_trace_bytes\":{},\
             \"stream_ns\":{:.1},\"batch_ns\":{:.1},\"stream_vs_batch\":{:.4},\
             \"identical_merged_bytes\":{}}}",
            r.name,
            r.nprocs,
            r.events,
            r.events_per_sec,
            r.peak_resident_ctt_bytes,
            r.raw_trace_bytes,
            r.stream_ns,
            r.batch_ns,
            r.stream_ns / r.batch_ns.max(1.0),
            r.identical_merged_bytes,
        ));
    }
    json.push_str("]}\n");

    // cargo runs bench binaries with cwd = the package dir, so anchor the
    // output at the workspace root (overridable for ad-hoc runs).
    let results = std::env::var("CYPRESS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_owned());
    let path = std::path::Path::new(&results).join("BENCH_stream.json");
    cypress_obs::write_atomic(&path, json.as_bytes()).expect("write BENCH_stream.json");
    println!("wrote {}", path.display());

    let broken: Vec<_> = rows
        .iter()
        .filter(|r| !r.identical_merged_bytes)
        .map(|r| r.name.as_str())
        .collect();
    assert!(
        broken.is_empty(),
        "streaming and batch merged encodings diverged for: {broken:?}"
    );
}
