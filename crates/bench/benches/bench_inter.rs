//! Bench for Fig. 18: inter-process merge cost — CYPRESS's O(n) vertex-wise
//! merge (sequential and parallel) vs the baselines' O(n²) alignment.

use cypress_baselines::{
    Scala2Config, Scala2Merged, Scala2Trace, ScalaConfig, ScalaMerged, ScalaTrace,
};
use cypress_bench::{harness, trace_workload};
use cypress_core::{compress_trace, merge_all, merge_all_parallel, CompressConfig};
use cypress_workloads::Scale;

fn main() {
    for (name, procs) in [("cg", 16u32), ("lu", 16)] {
        let t = trace_workload(name, procs, Scale::Quick);
        let ctts: Vec<_> = t
            .traces
            .iter()
            .map(|tr| compress_trace(&t.info.cst, tr, &CompressConfig::default()))
            .collect();
        let st: Vec<_> = t
            .traces
            .iter()
            .map(|tr| ScalaTrace::compress(tr, &ScalaConfig::default()))
            .collect();
        let st2: Vec<_> = t
            .traces
            .iter()
            .map(|tr| Scala2Trace::compress(tr, &Scala2Config::default()))
            .collect();

        harness::run(&format!("inter/{name}/{procs}p/cypress_seq"), || {
            merge_all(&ctts)
        });
        harness::run(&format!("inter/{name}/{procs}p/cypress_par"), || {
            merge_all_parallel(&ctts, 4)
        });
        harness::run(&format!("inter/{name}/{procs}p/scalatrace"), || {
            ScalaMerged::merge_all(&st)
        });
        harness::run(&format!("inter/{name}/{procs}p/scalatrace2"), || {
            Scala2Merged::merge_all(&st2)
        });
    }
}
