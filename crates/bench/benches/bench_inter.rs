//! Criterion bench for Fig. 18: inter-process merge cost — CYPRESS's O(n)
//! vertex-wise merge (sequential and parallel) vs the baselines' O(n²)
//! alignment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypress_baselines::{Scala2Config, Scala2Merged, Scala2Trace, ScalaConfig, ScalaMerged, ScalaTrace};
use cypress_bench::trace_workload;
use cypress_core::{compress_trace, merge_all, merge_all_parallel, CompressConfig};
use cypress_workloads::Scale;

fn bench_inter(c: &mut Criterion) {
    for (name, procs) in [("cg", 16u32), ("lu", 16)] {
        let t = trace_workload(name, procs, Scale::Quick);
        let ctts: Vec<_> = t
            .traces
            .iter()
            .map(|tr| compress_trace(&t.info.cst, tr, &CompressConfig::default()))
            .collect();
        let st: Vec<_> = t
            .traces
            .iter()
            .map(|tr| ScalaTrace::compress(tr, &ScalaConfig::default()))
            .collect();
        let st2: Vec<_> = t
            .traces
            .iter()
            .map(|tr| Scala2Trace::compress(tr, &Scala2Config::default()))
            .collect();

        let mut g = c.benchmark_group(format!("inter/{name}"));
        g.bench_with_input(BenchmarkId::new("cypress_seq", procs), &ctts, |b, c| {
            b.iter(|| merge_all(c))
        });
        g.bench_with_input(BenchmarkId::new("cypress_par", procs), &ctts, |b, c| {
            b.iter(|| merge_all_parallel(c, 4))
        });
        g.bench_with_input(BenchmarkId::new("scalatrace", procs), &st, |b, s| {
            b.iter(|| ScalaMerged::merge_all(s))
        });
        g.bench_with_input(BenchmarkId::new("scalatrace2", procs), &st2, |b, s| {
            b.iter(|| Scala2Merged::merge_all(s))
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inter
}
criterion_main!(benches);
