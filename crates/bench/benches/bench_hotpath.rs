//! Hot-path microbenchmarks for the ingestion and encoding overhaul,
//! emitted as `results/BENCH_hotpath.json` and diffed by the perf gate in
//! `scripts/check.sh`.
//!
//! Three sections:
//!
//! * **ingest** — events/sec through a `CompressSession`, per-event `push`
//!   vs `push_batch`, per workload. Both paths produce byte-identical CTTs
//!   (asserted here; the batch path is only a speedup).
//! * **deflate** — MB/s of `deflate` per level (fast/default/best) over a
//!   realistic corpus (a container image), plus the achieved ratio.
//! * **end_to_end** — wall time of the whole streaming pipeline (run +
//!   merge + leveled parallel container write) per workload.
//! * **e2e_ingest** — generation + compression events/sec, sequential
//!   (interpreter and session in lockstep) vs pipelined (SPSC rings +
//!   consumer thread) at 8 workers, with CTT byte-identity asserted. The
//!   pipelined win is concurrency between generation and compression, so it
//!   scales with physical cores; on a single-core host the two series are
//!   expected to tie (the ring only adds hand-off cost it then wins back).
//!
//! Throughput figures (`*_events_per_sec`, `mb_per_sec`, `batch_speedup`)
//! are min-over-samples — the repo-wide convention for noise-resistant
//! comparisons — while the `*_ns` fields report the mean. The perf gate in
//! `scripts/check.sh` diffs the min-derived series.
//!
//! JSON schema (`bench_hotpath/v2`):
//!
//! ```json
//! { "schema": "bench_hotpath/v2",
//!   "ingest": [ { "name": "...", "nprocs": 8, "events": 123,
//!     "push_ns": 1.0, "batch_ns": 1.0,
//!     "push_events_per_sec": 1.0e6, "batch_events_per_sec": 1.5e6,
//!     "batch_speedup": 1.5, "identical_ctt_bytes": true } ],
//!   "deflate": [ { "level": "fast", "input_bytes": 1, "ns": 1.0,
//!     "mb_per_sec": 100.0, "ratio": 3.0 } ],
//!   "fast_vs_default_mbps": 2.5,
//!   "end_to_end": [ { "name": "...", "nprocs": 8, "wall_ns": 1.0,
//!     "events_per_sec": 1.0e6 } ],
//!   "e2e_ingest": [ { "name": "...", "nprocs": 8, "events": 123,
//!     "seq_ns": 1.0, "pipe_ns": 1.0,
//!     "seq_events_per_sec": 1.0e6, "pipe_events_per_sec": 1.0e6,
//!     "pipe_speedup": 1.0, "identical_ctt_bytes": true } ] }
//! ```

use cypress_bench::harness;
use cypress_core::{
    compress_trace, merge_all, merge_all_parallel, CompressConfig, CompressSession, SessionConfig,
};
use cypress_deflate::{deflate, Level};
use cypress_runtime::{
    run_rank_with_sink, run_ranks, run_ranks_pipelined, InterpConfig, DEFAULT_BATCH_EVENTS,
    DEFAULT_RING_CAPACITY,
};
use cypress_trace::codec::Codec;
use cypress_trace::{assemble, encode_section, Container, SectionKind};
use cypress_workloads::{by_name, quick_procs, Scale};

const MERGE_THREADS: usize = 4;

fn fast_mode() -> bool {
    std::env::var("CYPRESS_BENCH_FAST").is_ok()
}

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

struct IngestRow {
    name: String,
    nprocs: u32,
    events: u64,
    push_ns: f64,
    batch_ns: f64,
    push_min_ns: f64,
    batch_min_ns: f64,
    identical: bool,
}

/// Ingestion throughput: compress every rank's recorded trace through a
/// session, per-event vs batched, and pin byte-identity while we're here.
fn bench_ingest(name: &str) -> IngestRow {
    let nprocs = quick_procs(name);
    let w = by_name(name, nprocs, Scale::Quick).unwrap();
    let (_, info) = w.compile();
    let traces = w.trace().unwrap();
    let events: u64 = traces.iter().map(|t| t.events.len() as u64).sum();
    let ccfg = CompressConfig::default();

    let run_push = || {
        let mut out = Vec::with_capacity(traces.len());
        for t in &traces {
            let mut s = CompressSession::new(
                &info.cst,
                t.rank,
                nprocs,
                ccfg.clone(),
                SessionConfig::default(),
            );
            for ev in &t.events {
                s.push(ev);
            }
            out.push(s.finish(t.app_time).0);
        }
        out
    };
    let run_batch = || {
        let mut out = Vec::with_capacity(traces.len());
        for t in &traces {
            let mut s = CompressSession::new(
                &info.cst,
                t.rank,
                nprocs,
                ccfg.clone(),
                SessionConfig::default(),
            );
            s.push_batch(&t.events);
            out.push(s.finish(t.app_time).0);
        }
        out
    };

    let a = run_push();
    let b = run_batch();
    let identical = a.iter().zip(&b).all(|(x, y)| x.to_bytes() == y.to_bytes());

    let push = harness::run(&format!("hotpath/ingest/{name}/push"), run_push);
    let batch = harness::run(&format!("hotpath/ingest/{name}/push_batch"), run_batch);
    IngestRow {
        name: name.to_owned(),
        nprocs,
        events,
        push_ns: push.mean_ns,
        batch_ns: batch.mean_ns,
        push_min_ns: push.min_ns,
        batch_min_ns: batch.min_ns,
        identical,
    }
}

struct DeflateRow {
    level: &'static str,
    input_bytes: usize,
    ns: f64,
    mb_per_sec: f64,
    ratio: f64,
}

/// A realistic mixed corpus: container payloads (CST text + CTT codec
/// bytes) and textual trace dumps from several workloads, so the match
/// finder sees both dense binary varints and repetitive text instead of a
/// single tiled unit.
fn deflate_corpus() -> Vec<u8> {
    let target = if fast_mode() { 1 << 20 } else { 4 << 20 };
    let ccfg = CompressConfig::default();
    let mut corpus = Vec::with_capacity(target * 2);
    'fill: loop {
        for name in ["lu", "sp", "ft", "mg"] {
            let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
            let (_, info) = w.compile();
            let traces = w.trace().unwrap();
            let ctts: Vec<_> = traces
                .iter()
                .map(|t| compress_trace(&info.cst, t, &ccfg))
                .collect();
            corpus.extend_from_slice(info.cst.to_text().as_bytes());
            corpus.extend_from_slice(&merge_all(&ctts).to_bytes());
            for ctt in &ctts {
                corpus.extend_from_slice(&ctt.to_bytes());
            }
            corpus.extend_from_slice(cypress_trace::format_trace(&traces[0]).as_bytes());
            if corpus.len() >= target {
                break 'fill;
            }
        }
    }
    corpus
}

fn bench_deflate(corpus: &[u8]) -> Vec<DeflateRow> {
    Level::ALL
        .iter()
        .map(|&level| {
            let out_len = deflate(corpus, level).len();
            let r = harness::run(&format!("hotpath/deflate/{}", level.name()), || {
                deflate(corpus, level)
            });
            DeflateRow {
                level: level.name(),
                input_bytes: corpus.len(),
                ns: r.mean_ns,
                mb_per_sec: corpus.len() as f64 / (r.min_ns / 1e9) / 1e6,
                ratio: corpus.len() as f64 / out_len.max(1) as f64,
            }
        })
        .collect()
}

struct EndToEndRow {
    name: String,
    nprocs: u32,
    events: u64,
    wall_ns: f64,
    min_ns: f64,
}

/// Whole pipeline: interpret every rank into an online session, merge on
/// the pool, and persist a leveled container with parallel per-section
/// encoding — the same hot path `cypress compress --stream --level default`
/// takes, driven through the subcrates.
fn bench_end_to_end(name: &str, dir: &std::path::Path) -> EndToEndRow {
    let nprocs = quick_procs(name);
    let w = by_name(name, nprocs, Scale::Quick).unwrap();
    let (prog, info) = w.compile();
    let icfg = InterpConfig::default();
    let ccfg = CompressConfig::default();
    let path = dir.join(format!("{name}.cytc"));
    let events = std::cell::Cell::new(0u64);
    let pool = workers();
    let r = harness::run(&format!("hotpath/end_to_end/{name}"), || {
        let per_rank = run_ranks(nprocs, pool, |rank| {
            let mut s = CompressSession::new(
                &info.cst,
                rank,
                nprocs,
                ccfg.clone(),
                SessionConfig::default(),
            );
            let app_time = run_rank_with_sink(&prog, &info, rank, nprocs, &icfg, &mut s)
                .expect("workload rank failed");
            s.finish(app_time)
        });
        let (ctts, stats): (Vec<_>, Vec<_>) = per_rank.into_iter().unzip();
        events.set(stats.iter().map(|s| s.events).sum());
        let merged = merge_all_parallel(&ctts, MERGE_THREADS);
        let mut c = Container::new(nprocs);
        c.push(SectionKind::CstText, None, info.cst.to_text().into_bytes());
        c.push(SectionKind::MergedCtt, None, merged.to_bytes());
        let encoded: Vec<_> = run_ranks(c.sections.len() as u32, pool, |i| {
            encode_section(&c.sections[i as usize], Some(Level::Default))
        });
        std::fs::write(&path, assemble(nprocs, &encoded)).expect("container write");
    });
    EndToEndRow {
        name: name.to_owned(),
        nprocs,
        events: events.get(),
        wall_ns: r.mean_ns,
        min_ns: r.min_ns,
    }
}

struct E2eIngestRow {
    name: String,
    nprocs: u32,
    events: u64,
    seq_ns: f64,
    pipe_ns: f64,
    seq_min_ns: f64,
    pipe_min_ns: f64,
    identical: bool,
}

/// Generation + compression, sequential vs pipelined, both at 8 workers —
/// the interpreter→session boundary is the only difference between the two
/// runs, so the ratio isolates what the SPSC rings buy (or cost).
fn bench_e2e_ingest(name: &str) -> E2eIngestRow {
    let nprocs = quick_procs(name);
    let w = by_name(name, nprocs, Scale::Quick).unwrap();
    let (prog, info) = w.compile();
    let icfg = InterpConfig::default();
    let ccfg = CompressConfig::default();
    let pool = 8;
    let events = std::cell::Cell::new(0u64);

    let run_seq = || {
        let per_rank = run_ranks(nprocs, pool, |rank| {
            let mut s = CompressSession::new(
                &info.cst,
                rank,
                nprocs,
                ccfg.clone(),
                SessionConfig::default(),
            );
            let app_time = run_rank_with_sink(&prog, &info, rank, nprocs, &icfg, &mut s)
                .expect("workload rank failed");
            s.finish(app_time)
        });
        events.set(per_rank.iter().map(|(_, st)| st.events).sum());
        per_rank.into_iter().map(|(ctt, _)| ctt).collect::<Vec<_>>()
    };
    let run_pipe = || {
        run_ranks_pipelined(
            nprocs,
            pool,
            DEFAULT_RING_CAPACITY,
            DEFAULT_BATCH_EVENTS,
            |rank, sink| run_rank_with_sink(&prog, &info, rank, nprocs, &icfg, sink),
            |rank| {
                CompressSession::new(
                    &info.cst,
                    rank,
                    nprocs,
                    ccfg.clone(),
                    SessionConfig::default(),
                )
            },
            |s, batch| s.push_batch(batch),
            |s, app_time| s.finish(app_time).0,
        )
        .expect("pipelined run failed")
    };

    let a = run_seq();
    let b = run_pipe();
    let identical =
        a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| x.to_bytes() == y.to_bytes());

    let seq = harness::run(&format!("hotpath/e2e_ingest/{name}/sequential"), run_seq);
    let pipe = harness::run(&format!("hotpath/e2e_ingest/{name}/pipelined"), run_pipe);
    E2eIngestRow {
        name: name.to_owned(),
        nprocs,
        events: events.get(),
        seq_ns: seq.mean_ns,
        pipe_ns: pipe.mean_ns,
        seq_min_ns: seq.min_ns,
        pipe_min_ns: pipe.min_ns,
        identical,
    }
}

fn main() {
    let names: &[&str] = if fast_mode() {
        &["jacobi", "cg", "mg"]
    } else {
        &["jacobi", "cg", "ft", "lu", "mg", "sp", "leslie3d"]
    };

    let ingest: Vec<IngestRow> = names.iter().map(|n| bench_ingest(n)).collect();
    let corpus = deflate_corpus();
    let deflate_rows = bench_deflate(&corpus);
    let dir = std::env::temp_dir().join(format!("cypress-bench-hotpath-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let e2e: Vec<EndToEndRow> = names.iter().map(|n| bench_end_to_end(n, &dir)).collect();
    let _ = std::fs::remove_dir_all(&dir);
    let e2e_ingest: Vec<E2eIngestRow> = names.iter().map(|n| bench_e2e_ingest(n)).collect();

    let mbps = |lvl: &str| {
        deflate_rows
            .iter()
            .find(|r| r.level == lvl)
            .map(|r| r.mb_per_sec)
            .unwrap_or(0.0)
    };
    let fast_vs_default = mbps("fast") / mbps("default").max(1e-9);

    let mut json = String::from("{\"schema\":\"bench_hotpath/v2\",\"ingest\":[");
    for (i, r) in ingest.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"nprocs\":{},\"events\":{},\
             \"push_ns\":{:.1},\"batch_ns\":{:.1},\
             \"push_events_per_sec\":{:.1},\"batch_events_per_sec\":{:.1},\
             \"batch_speedup\":{:.4},\"identical_ctt_bytes\":{}}}",
            r.name,
            r.nprocs,
            r.events,
            r.push_ns,
            r.batch_ns,
            r.events as f64 / (r.push_min_ns / 1e9),
            r.events as f64 / (r.batch_min_ns / 1e9),
            r.push_min_ns / r.batch_min_ns.max(1.0),
            r.identical,
        ));
    }
    json.push_str("],\"deflate\":[");
    for (i, r) in deflate_rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"level\":\"{}\",\"input_bytes\":{},\"ns\":{:.1},\
             \"mb_per_sec\":{:.2},\"ratio\":{:.3}}}",
            r.level, r.input_bytes, r.ns, r.mb_per_sec, r.ratio,
        ));
    }
    json.push_str(&format!(
        "],\"fast_vs_default_mbps\":{fast_vs_default:.3},\"end_to_end\":["
    ));
    for (i, r) in e2e.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"nprocs\":{},\"events\":{},\"wall_ns\":{:.1},\
             \"events_per_sec\":{:.1}}}",
            r.name,
            r.nprocs,
            r.events,
            r.wall_ns,
            r.events as f64 / (r.min_ns / 1e9),
        ));
    }
    json.push_str("],\"e2e_ingest\":[");
    for (i, r) in e2e_ingest.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"nprocs\":{},\"events\":{},\
             \"seq_ns\":{:.1},\"pipe_ns\":{:.1},\
             \"seq_events_per_sec\":{:.1},\"pipe_events_per_sec\":{:.1},\
             \"pipe_speedup\":{:.4},\"identical_ctt_bytes\":{}}}",
            r.name,
            r.nprocs,
            r.events,
            r.seq_ns,
            r.pipe_ns,
            r.events as f64 / (r.seq_min_ns / 1e9),
            r.events as f64 / (r.pipe_min_ns / 1e9),
            r.seq_min_ns / r.pipe_min_ns.max(1.0),
            r.identical,
        ));
    }
    json.push_str("]}\n");

    let results = std::env::var("CYPRESS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_owned());
    let path = std::path::Path::new(&results).join("BENCH_hotpath.json");
    cypress_obs::write_atomic(&path, json.as_bytes()).expect("write BENCH_hotpath.json");
    println!("wrote {}", path.display());

    let broken: Vec<_> = ingest
        .iter()
        .filter(|r| !r.identical)
        .map(|r| r.name.as_str())
        .collect();
    assert!(
        broken.is_empty(),
        "push and push_batch CTT encodings diverged for: {broken:?}"
    );
    let broken: Vec<_> = e2e_ingest
        .iter()
        .filter(|r| !r.identical)
        .map(|r| r.name.as_str())
        .collect();
    assert!(
        broken.is_empty(),
        "pipelined and sequential CTT encodings diverged for: {broken:?}"
    );
}
