//! Bench for Table I: static-analysis (CST construction) cost on top of
//! plain compilation, per NPB program.

use cypress_bench::harness;
use cypress_cst::analyze_program;
use cypress_minilang::{check_program, parse};
use cypress_workloads::{by_name, quick_procs, Scale, NPB_NAMES};

fn main() {
    for name in NPB_NAMES {
        let w = by_name(name, quick_procs(name), Scale::Quick).expect("known workload");
        harness::run(&format!("compile/{name}/parse_check"), || {
            let p = parse(&w.source).unwrap();
            check_program(&p).unwrap();
            p
        });
        harness::run(&format!("compile/{name}/with_cst"), || {
            let p = parse(&w.source).unwrap();
            check_program(&p).unwrap();
            analyze_program(&p)
        });
    }
}
