//! Criterion bench for Table I: static-analysis (CST construction) cost on
//! top of plain compilation, per NPB program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypress_cst::analyze_program;
use cypress_minilang::{check_program, parse};
use cypress_workloads::{by_name, quick_procs, Scale, NPB_NAMES};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    for name in NPB_NAMES {
        let w = by_name(name, quick_procs(name), Scale::Quick).expect("known workload");
        g.bench_with_input(BenchmarkId::new("parse_check", name), &w.source, |b, src| {
            b.iter(|| {
                let p = parse(src).unwrap();
                check_program(&p).unwrap();
                p
            })
        });
        g.bench_with_input(BenchmarkId::new("with_cst", name), &w.source, |b, src| {
            b.iter(|| {
                let p = parse(src).unwrap();
                check_program(&p).unwrap();
                analyze_program(&p)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compile
}
criterion_main!(benches);
