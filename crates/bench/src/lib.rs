//! # cypress-bench — measurement pipeline shared by the `figures` binary and
//! the benches.
//!
//! Every experiment of the paper's §VII maps to one function here; see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded
//! results. Time overheads compare *wall-clock compression time* against the
//! *virtual application time* of the simulated run — absolute percentages
//! therefore depend on the virtual-time calibration, but the cross-method
//! comparisons (the paper's claims) do not.
//!
//! All overhead timings go through `cypress-obs` stopwatches and size
//! histograms under the `bench` scope, so the Fig. 16/18 CSV columns and
//! the `--metrics` report are two views of one measurement path.

use cypress_baselines::{
    Scala2Config, Scala2Merged, Scala2Trace, ScalaConfig, ScalaMerged, ScalaTrace,
};
use cypress_core::{
    compress_trace, decompress, merge_all, merge_all_parallel, CompressConfig, Ctt,
};
use cypress_cst::StaticInfo;
use cypress_deflate::{gzip_compress, Level};
use cypress_simmpi::{from_raw_traces, simulate, LogGp, SimOp, SimResult};
use cypress_trace::codec::Codec;
use cypress_trace::raw::{encode_mpi_events, RawTrace};
use cypress_workloads::{by_name, Scale, Workload};

pub mod harness;

/// Byte-size histogram bounds (1 KiB … 2 GiB) for memory-footprint metrics.
pub const SIZE_BOUNDS: [u64; 8] = [
    1 << 10,
    1 << 13,
    1 << 16,
    1 << 19,
    1 << 22,
    1 << 25,
    1 << 28,
    1 << 31,
];

/// Traced workload bundle.
pub struct Traced {
    pub workload: Workload,
    pub info: StaticInfo,
    pub traces: Vec<RawTrace>,
}

/// Trace a named workload at a process count.
pub fn trace_workload(name: &str, nprocs: u32, scale: Scale) -> Traced {
    let w = by_name(name, nprocs, scale).unwrap_or_else(|| panic!("unknown workload {name}"));
    let (_, info) = w.compile();
    let traces = w
        .trace_parallel(num_threads())
        .unwrap_or_else(|e| panic!("tracing {name}@{nprocs} failed: {e}"));
    Traced {
        workload: w,
        info,
        traces,
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Fig. 15 / Fig. 19 row: total trace sizes (bytes) per method.
#[derive(Debug, Clone)]
pub struct TraceSizes {
    pub nprocs: u32,
    /// Uncompressed per-event encoding, summed over ranks.
    pub raw: usize,
    /// Per-rank gzip of the raw encoding (no inter-process compression).
    pub gzip: usize,
    pub scalatrace: usize,
    pub scalatrace2: usize,
    pub scalatrace2_gzip: usize,
    pub cypress: usize,
    pub cypress_gzip: usize,
}

/// Compute all Fig. 15 series for one traced workload.
pub fn trace_sizes(t: &Traced) -> TraceSizes {
    let raw_blobs: Vec<Vec<u8>> = t.traces.iter().map(encode_mpi_events).collect();
    let raw: usize = raw_blobs.iter().map(|b| b.len()).sum();
    let gzip: usize = raw_blobs
        .iter()
        .map(|b| gzip_compress(b, Level::Default).len())
        .sum();

    let st: Vec<ScalaTrace> = t
        .traces
        .iter()
        .map(|tr| ScalaTrace::compress(tr, &ScalaConfig::default()))
        .collect();
    let scalatrace = ScalaMerged::merge_all(&st).encoded_size();

    let st2: Vec<Scala2Trace> = t
        .traces
        .iter()
        .map(|tr| Scala2Trace::compress(tr, &Scala2Config::default()))
        .collect();
    let st2_merged = Scala2Merged::merge_all(&st2);
    let scalatrace2 = st2_merged.encoded_size();
    let scalatrace2_gzip = gzip_compress(&st2_merged.to_bytes(), Level::Default).len();

    let ctts: Vec<Ctt> = t
        .traces
        .iter()
        .map(|tr| compress_trace(&t.info.cst, tr, &CompressConfig::default()))
        .collect();
    let merged = merge_all(&ctts);
    // CYPRESS's artifact = static CST text + merged CTT.
    let cst_bytes = t.info.cst.to_text().len();
    let merged_bytes = merged.to_bytes();
    let cypress = cst_bytes + merged_bytes.len();
    let cypress_gzip = cst_bytes
        .min(gzip_compress(t.info.cst.to_text().as_bytes(), Level::Default).len())
        + gzip_compress(&merged_bytes, Level::Default).len();

    TraceSizes {
        nprocs: t.workload.nprocs,
        raw,
        gzip,
        scalatrace,
        scalatrace2,
        scalatrace2_gzip,
        cypress,
        cypress_gzip,
    }
}

/// Fig. 16 row: intra-process compression overhead per method.
#[derive(Debug, Clone)]
pub struct IntraOverhead {
    pub nprocs: u32,
    /// Wall-clock compression time as a fraction of virtual app time (mean
    /// over ranks).
    pub time_frac_scalatrace: f64,
    pub time_frac_scalatrace2: f64,
    pub time_frac_cypress: f64,
    /// Mean live compressor memory per rank (bytes).
    pub mem_scalatrace: usize,
    pub mem_cypress: usize,
}

/// Measure intra-process compression cost for every rank of a traced run.
///
/// Timing goes through always-on `cypress-obs` stopwatches and memory
/// through size histograms (`bench` scope): the returned Fig. 16 columns
/// and the `--metrics` report come from the same recordings.
pub fn intra_overhead(t: &Traced) -> IntraOverhead {
    let m = cypress_obs::scope("bench");
    let mem_st_hist = m.histogram("intra_mem_scalatrace_bytes", &SIZE_BOUNDS);
    let mem_cy_hist = m.histogram("intra_mem_cypress_bytes", &SIZE_BOUNDS);
    let mut ts_st = 0.0;
    let mut ts_st2 = 0.0;
    let mut ts_cy = 0.0;
    let mut mem_st = 0usize;
    let mut mem_cy = 0usize;
    for tr in &t.traces {
        let app = (tr.app_time.max(1)) as f64;

        let sw = m.timer("intra_scalatrace");
        let mut c = cypress_baselines::ScalaCompressor::new(tr.rank, ScalaConfig::default());
        for r in tr.mpi_records() {
            c.push(r);
        }
        let st_bytes = c.approx_bytes();
        ts_st += sw.stop_ns() as f64 / app;
        mem_st_hist.record(st_bytes as u64);
        mem_st += st_bytes;

        let sw = m.timer("intra_scalatrace2");
        let _ = Scala2Trace::compress(tr, &Scala2Config::default());
        ts_st2 += sw.stop_ns() as f64 / app;

        let sw = m.timer("intra_cypress");
        let ctt = compress_trace(&t.info.cst, tr, &CompressConfig::default());
        ts_cy += sw.stop_ns() as f64 / app;
        let cy_bytes = ctt.approx_bytes();
        mem_cy_hist.record(cy_bytes as u64);
        mem_cy += cy_bytes;
    }
    let n = t.traces.len() as f64;
    IntraOverhead {
        nprocs: t.workload.nprocs,
        time_frac_scalatrace: ts_st / n,
        time_frac_scalatrace2: ts_st2 / n,
        time_frac_cypress: ts_cy / n,
        mem_scalatrace: mem_st / t.traces.len(),
        mem_cypress: mem_cy / t.traces.len(),
    }
}

/// Fig. 18 row: inter-process merge wall time per method (seconds).
#[derive(Debug, Clone)]
pub struct InterOverhead {
    pub nprocs: u32,
    pub scalatrace_s: f64,
    pub scalatrace2_s: f64,
    pub cypress_s: f64,
}

pub fn inter_overhead(t: &Traced) -> InterOverhead {
    let m = cypress_obs::scope("bench");
    let st: Vec<ScalaTrace> = t
        .traces
        .iter()
        .map(|tr| ScalaTrace::compress(tr, &ScalaConfig::default()))
        .collect();
    let sw = m.timer("inter_scalatrace");
    let _ = ScalaMerged::merge_all(&st);
    let scalatrace_s = sw.stop_secs();

    let st2: Vec<Scala2Trace> = t
        .traces
        .iter()
        .map(|tr| Scala2Trace::compress(tr, &Scala2Config::default()))
        .collect();
    let sw = m.timer("inter_scalatrace2");
    let _ = Scala2Merged::merge_all(&st2);
    let scalatrace2_s = sw.stop_secs();

    let ctts: Vec<Ctt> = t
        .traces
        .iter()
        .map(|tr| compress_trace(&t.info.cst, tr, &CompressConfig::default()))
        .collect();
    let sw = m.timer("inter_cypress");
    let _ = merge_all_parallel(&ctts, num_threads());
    let cypress_s = sw.stop_secs();

    InterOverhead {
        nprocs: t.workload.nprocs,
        scalatrace_s,
        scalatrace2_s,
        cypress_s,
    }
}

/// Table I row: compilation time without and with CST construction.
#[derive(Debug, Clone)]
pub struct CompileOverhead {
    pub base_s: f64,
    pub with_cst_s: f64,
}

impl CompileOverhead {
    pub fn overhead_pct(&self) -> f64 {
        if self.base_s == 0.0 {
            return 0.0;
        }
        (self.with_cst_s - self.base_s) / self.base_s * 100.0
    }
}

pub fn compile_overhead(name: &str, reps: u32) -> CompileOverhead {
    let w = by_name(name, cypress_workloads::quick_procs(name), Scale::Quick)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let m = cypress_obs::scope("bench");
    let sw = m.timer("compile_base");
    for _ in 0..reps {
        let p = cypress_minilang::parse(&w.source).expect("workload parses");
        cypress_minilang::check_program(&p).expect("workload checks");
        std::hint::black_box(&p);
    }
    let base_s = sw.stop_secs() / reps as f64;
    let sw = m.timer("compile_with_cst");
    for _ in 0..reps {
        let p = cypress_minilang::parse(&w.source).expect("workload parses");
        cypress_minilang::check_program(&p).expect("workload checks");
        let info = cypress_cst::analyze_program(&p);
        std::hint::black_box(&info);
    }
    let with_cst_s = sw.stop_secs() / reps as f64;
    CompileOverhead { base_s, with_cst_s }
}

/// Fig. 21 row: measured vs predicted execution time.
#[derive(Debug, Clone)]
pub struct Prediction {
    pub nprocs: u32,
    pub measured_s: f64,
    pub predicted_s: f64,
    pub comm_pct: f64,
}

impl Prediction {
    pub fn error_pct(&self) -> f64 {
        if self.measured_s == 0.0 {
            return 0.0;
        }
        ((self.predicted_s - self.measured_s) / self.measured_s * 100.0).abs()
    }
}

/// Simulate raw traces ("measured") and CYPRESS-decompressed traces
/// ("predicted") through the LogGP simulator.
pub fn predict(t: &Traced) -> Result<Prediction, cypress_simmpi::SimError> {
    let model = LogGp::default();
    let measured = simulate(&from_raw_traces(&t.traces), &model)?;

    let cfg = CompressConfig::default();
    let predicted_ops: Vec<Vec<SimOp>> = t
        .traces
        .iter()
        .map(|tr| {
            let ctt = compress_trace(&t.info.cst, tr, &cfg);
            decompress(&t.info.cst, &ctt)
                .into_iter()
                .map(|o| SimOp {
                    gid: o.gid,
                    op: o.op,
                    params: o.params,
                    pre_gap: o.mean_gap,
                })
                .collect()
        })
        .collect();
    let predicted = simulate(&predicted_ops, &model)?;
    Ok(Prediction {
        nprocs: t.workload.nprocs,
        measured_s: measured.total as f64 / 1e9,
        predicted_s: predicted.total as f64 / 1e9,
        comm_pct: measured.comm_fraction() * 100.0,
    })
}

/// Simulate raw traces only (helper for examples/tests).
pub fn simulate_raw(t: &Traced) -> Result<SimResult, cypress_simmpi::SimError> {
    simulate(&from_raw_traces(&t.traces), &LogGp::default())
}

/// Render a size in KB the way the paper's axes do.
pub fn kb(bytes: usize) -> f64 {
    bytes as f64 / 1024.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_pipeline_runs_and_orders_sanely() {
        let t = trace_workload("jacobi", 8, Scale::Quick);
        let s = trace_sizes(&t);
        assert!(s.raw > 0);
        assert!(s.gzip < s.raw, "gzip must beat raw");
        assert!(
            s.cypress < s.gzip,
            "cypress must beat per-rank gzip on jacobi"
        );
        assert!(s.cypress_gzip <= s.cypress);
    }

    #[test]
    fn intra_overhead_cypress_cheapest() {
        let t = trace_workload("lu", 8, Scale::Quick);
        let o = intra_overhead(&t);
        // The Fig. 16 memory claim our substrate supports directly: the CTT
        // stays small in absolute terms and near-constant as the trace
        // grows (it is bounded by program structure, not event count).
        let long = trace_workload("lu", 8, Scale::Paper);
        let mut o_long = intra_overhead(&long);
        // Wall-time comparison at amortized (paper) scale. Preemption
        // mid-phase on a loaded box (the parallel workspace test run) can
        // still flip a close call, so the comparison gets the repo's usual
        // best-of-three retry: noise must hit the same side every time.
        for attempt in 0..3 {
            if o_long.time_frac_cypress < o_long.time_frac_scalatrace {
                break;
            }
            assert!(
                attempt < 2,
                "cypress {} vs scalatrace {}",
                o_long.time_frac_cypress,
                o_long.time_frac_scalatrace
            );
            o_long = intra_overhead(&long);
        }
        assert!(
            o_long.mem_cypress < 64 * 1024,
            "CTT ballooned: {}",
            o_long.mem_cypress
        );
        let events_ratio = long.traces[0].mpi_count() as f64 / t.traces[0].mpi_count() as f64;
        let mem_ratio = o_long.mem_cypress as f64 / o.mem_cypress.max(1) as f64;
        assert!(events_ratio > 10.0, "paper scale should be much longer");
        assert!(
            mem_ratio < events_ratio / 4.0,
            "CTT memory should grow far slower than the trace ({mem_ratio:.1}x vs {events_ratio:.1}x)"
        );
    }

    #[test]
    fn compile_overhead_small() {
        let c = compile_overhead("bt", 30);
        // Wall times are sub-millisecond and scheduler-noisy; assert sanity
        // (both phases ran, CST cost is bounded), not a precise ratio.
        assert!(c.base_s > 0.0 && c.with_cst_s > 0.0);
        assert!(
            c.with_cst_s < c.base_s * 20.0,
            "CST build should be the same order as parsing: {} vs {}",
            c.with_cst_s,
            c.base_s
        );
    }

    #[test]
    fn prediction_close_to_measured() {
        let t = trace_workload("jacobi", 8, Scale::Quick);
        let p = predict(&t).unwrap();
        assert!(p.error_pct() < 20.0, "error {}", p.error_pct());
        assert!(p.comm_pct > 0.0 && p.comm_pct < 100.0);
    }

    #[test]
    fn fig21_average_error_within_documented_bound() {
        // The Fig. 21 replay-prediction experiment (leslie3d across process
        // counts): EXPERIMENTS.md §Fig. 21 records a 3.50 % average error at
        // paper scale (1.14–5.00 % per point; the paper reports 5.9 %). The
        // quick-scale sweep regenerated by `scripts/figures.sh fig21` must
        // stay inside the same average bound — the pipeline is fully
        // deterministic, so this is a regression pin, not a noisy check.
        let procs = [16u32, 32, 64];
        let mut sum = 0.0;
        for &p in &procs {
            let t = trace_workload("leslie3d", p, Scale::Quick);
            let pred = predict(&t).unwrap();
            assert!(
                pred.error_pct() <= 5.0,
                "{p} procs: per-point error {:.2}% above the documented range",
                pred.error_pct()
            );
            sum += pred.error_pct();
        }
        let avg = sum / procs.len() as f64;
        assert!(
            avg <= 3.5,
            "average prediction error {avg:.2}% above the EXPERIMENTS.md §Fig. 21 bound (3.50%)"
        );
    }
}
