//! Regenerate every table and figure of the paper's evaluation (§VII).
//!
//! ```text
//! figures [fig15|fig16|fig17|fig18|table1|fig19|fig20|fig21|all] [--paper] [--metrics]
//! ```
//!
//! Default (quick) mode runs the workloads at reduced process counts and
//! iteration scales so the full set finishes in minutes on a laptop;
//! `--paper` switches to the paper's process counts (64–512) and CLASS-D
//! shaped iteration structure — expect a long run. Output goes to stdout and
//! to `results/<experiment>.csv`. With `--metrics`, pipeline instrumentation
//! is enabled and a metrics report is printed and saved to
//! `results/metrics.jsonl` at exit.

use cypress_bench::*;
use cypress_trace::commmatrix::CommMatrix;
use cypress_workloads::Scale;
use std::fmt::Write as _;
use std::fs;

struct Cfg {
    scale: Scale,
    paper: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let metrics = args.iter().any(|a| a == "--metrics");
    if metrics {
        cypress_obs::set_enabled(true);
    }
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let cfg = Cfg {
        scale: if paper { Scale::Paper } else { Scale::Quick },
        paper,
    };
    fs::create_dir_all("results").expect("create results dir");

    match what.as_str() {
        "fig15" => fig15(&cfg),
        "fig16" => fig16(&cfg),
        "fig17" => fig17(&cfg),
        "fig18" => fig18(&cfg),
        "table1" => table1(),
        "fig19" => fig19(&cfg),
        "fig20" => fig20(&cfg),
        "fig21" => fig21(&cfg),
        "ablation" => ablation(&cfg),
        "all" => {
            ablation(&cfg);
            table1();
            fig15(&cfg);
            fig16(&cfg);
            fig17(&cfg);
            fig18(&cfg);
            fig19(&cfg);
            fig20(&cfg);
            fig21(&cfg);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: figures [fig15|fig16|fig17|fig18|table1|fig19|fig20|fig21|ablation|all] [--paper] [--metrics]"
            );
            std::process::exit(2);
        }
    }

    if metrics {
        let report = cypress_obs::report();
        println!("\n== metrics ==\n{}", report.to_text());
        let path = std::path::Path::new("results/metrics.jsonl");
        cypress_obs::append_atomic(path, report.to_jsonl().as_bytes())
            .expect("write metrics.jsonl");
        println!("  -> {}", path.display());
    }
}

/// Process counts per benchmark, honouring benchmark shape constraints.
fn procs_for(name: &str, cfg: &Cfg) -> Vec<u32> {
    if cfg.paper {
        return cypress_workloads::paper_procs(name).to_vec();
    }
    match name {
        "bt" | "sp" => vec![9, 16, 25, 36],
        "dt" => vec![8, 16, 32, 64],
        "leslie3d" => vec![16, 32, 64],
        _ => vec![8, 16, 32, 64],
    }
}

fn save(name: &str, content: &str) {
    let path = format!("results/{name}.csv");
    fs::write(&path, content).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("  -> {path}");
}

fn fig15(cfg: &Cfg) {
    println!("\n== Fig 15: total communication trace sizes (KB) ==");
    let mut csv = String::from(
        "bench,nprocs,raw_kb,gzip_kb,scalatrace_kb,scalatrace2_kb,scalatrace2_gzip_kb,cypress_kb,cypress_gzip_kb\n",
    );
    for name in cypress_workloads::NPB_NAMES {
        println!("[{name}]");
        println!(
            "{:>7} {:>12} {:>12} {:>12} {:>12} {:>14} {:>12} {:>14}",
            "procs",
            "raw",
            "gzip",
            "scalatrace",
            "scalatrace2",
            "st2+gzip",
            "cypress",
            "cypress+gzip"
        );
        for p in procs_for(name, cfg) {
            let t = trace_workload(name, p, cfg.scale);
            let s = trace_sizes(&t);
            println!(
                "{:>7} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>14.1} {:>12.1} {:>14.1}",
                p,
                kb(s.raw),
                kb(s.gzip),
                kb(s.scalatrace),
                kb(s.scalatrace2),
                kb(s.scalatrace2_gzip),
                kb(s.cypress),
                kb(s.cypress_gzip)
            );
            writeln!(
                csv,
                "{name},{p},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1}",
                kb(s.raw),
                kb(s.gzip),
                kb(s.scalatrace),
                kb(s.scalatrace2),
                kb(s.scalatrace2_gzip),
                kb(s.cypress),
                kb(s.cypress_gzip)
            )
            .unwrap();
        }
    }
    save("fig15_trace_sizes", &csv);
}

fn fig16(cfg: &Cfg) {
    println!("\n== Fig 16: intra-process compression overhead ==");
    let mut csv = String::from(
        "bench,nprocs,time_pct_scalatrace,time_pct_scalatrace2,time_pct_cypress,mem_scalatrace_b,mem_cypress_b\n",
    );
    for name in ["bt", "cg", "ft", "lu", "mg", "sp"] {
        println!("[{name}]");
        println!(
            "{:>7} {:>14} {:>15} {:>13} {:>14} {:>12}",
            "procs", "t%scalatrace", "t%scalatrace2", "t%cypress", "mem_st(B)", "mem_cy(B)"
        );
        for p in procs_for(name, cfg) {
            let t = trace_workload(name, p, cfg.scale);
            let o = intra_overhead(&t);
            println!(
                "{:>7} {:>13.3}% {:>14.3}% {:>12.3}% {:>14} {:>12}",
                p,
                o.time_frac_scalatrace * 100.0,
                o.time_frac_scalatrace2 * 100.0,
                o.time_frac_cypress * 100.0,
                o.mem_scalatrace,
                o.mem_cypress
            );
            writeln!(
                csv,
                "{name},{p},{:.4},{:.4},{:.4},{},{}",
                o.time_frac_scalatrace * 100.0,
                o.time_frac_scalatrace2 * 100.0,
                o.time_frac_cypress * 100.0,
                o.mem_scalatrace,
                o.mem_cypress
            )
            .unwrap();
        }
    }
    save("fig16_intra_overhead", &csv);
}

fn fig17(cfg: &Cfg) {
    println!("\n== Fig 17: communication patterns of MG and SP (64 procs) ==");
    let (mg_p, sp_p) = if cfg.paper { (64, 64) } else { (16, 16) };
    for (name, p) in [("mg", mg_p), ("sp", sp_p)] {
        let t = trace_workload(name, p, cfg.scale);
        let m = CommMatrix::from_traces(&t.traces);
        println!("[{name} @ {p}] total {} bytes, heatmap:", m.total());
        print!("{}", m.to_ascii());
        fs::write(format!("results/fig17_{name}_matrix.csv"), m.to_csv()).expect("write matrix");
        println!("  -> results/fig17_{name}_matrix.csv");
    }
}

fn fig18(cfg: &Cfg) {
    println!("\n== Fig 18: inter-process compression overhead (seconds) ==");
    let mut csv = String::from("bench,nprocs,scalatrace_s,scalatrace2_s,cypress_s\n");
    for name in ["bt", "cg", "lu", "mg", "sp"] {
        println!("[{name}]");
        println!(
            "{:>7} {:>14} {:>14} {:>12}",
            "procs", "scalatrace(s)", "scalatrace2(s)", "cypress(s)"
        );
        for p in procs_for(name, cfg) {
            let t = trace_workload(name, p, cfg.scale);
            let o = inter_overhead(&t);
            println!(
                "{:>7} {:>14.4} {:>14.4} {:>12.4}",
                p, o.scalatrace_s, o.scalatrace2_s, o.cypress_s
            );
            writeln!(
                csv,
                "{name},{p},{:.6},{:.6},{:.6}",
                o.scalatrace_s, o.scalatrace2_s, o.cypress_s
            )
            .unwrap();
        }
    }
    save("fig18_inter_overhead", &csv);
}

fn table1() {
    println!("\n== Table I: compilation overhead of CYPRESS ==");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "bench", "w/o cst(ms)", "w/ cst(ms)", "overhead"
    );
    let mut csv = String::from("bench,base_ms,with_cst_ms,overhead_pct\n");
    for name in cypress_workloads::NPB_NAMES {
        let c = compile_overhead(name, 20);
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>9.2}%",
            name,
            c.base_s * 1e3,
            c.with_cst_s * 1e3,
            c.overhead_pct()
        );
        writeln!(
            csv,
            "{name},{:.4},{:.4},{:.2}",
            c.base_s * 1e3,
            c.with_cst_s * 1e3,
            c.overhead_pct()
        )
        .unwrap();
    }
    save("table1_compile_overhead", &csv);
}

fn fig19(cfg: &Cfg) {
    println!("\n== Fig 19: LESlie3d compressed trace sizes (KB) ==");
    let mut csv = String::from("nprocs,raw_kb,gzip_kb,scalatrace_kb,cypress_kb\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12}",
        "procs", "raw", "gzip", "scalatrace", "cypress"
    );
    for p in procs_for("leslie3d", cfg) {
        let t = trace_workload("leslie3d", p, cfg.scale);
        let s = trace_sizes(&t);
        println!(
            "{:>7} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            p,
            kb(s.raw),
            kb(s.gzip),
            kb(s.scalatrace),
            kb(s.cypress)
        );
        writeln!(
            csv,
            "{p},{:.1},{:.1},{:.1},{:.1}",
            kb(s.raw),
            kb(s.gzip),
            kb(s.scalatrace),
            kb(s.cypress)
        )
        .unwrap();
    }
    save("fig19_leslie3d_sizes", &csv);
}

fn fig20(cfg: &Cfg) {
    println!("\n== Fig 20: LESlie3d communication patterns ==");
    let counts: &[u32] = if cfg.paper { &[32, 64] } else { &[16, 32] };
    for &p in counts {
        let t = trace_workload("leslie3d", p, cfg.scale);
        let m = CommMatrix::from_traces(&t.traces);
        println!("[leslie3d @ {p}] peers of rank 0: {:?}", m.peers_of(0));
        println!(
            "  distinct message volumes per edge: {:?}",
            m.distinct_volumes().len()
        );
        print!("{}", m.to_ascii());
        fs::write(format!("results/fig20_leslie3d_{p}.csv"), m.to_csv()).expect("write matrix");
        println!("  -> results/fig20_leslie3d_{p}.csv");
    }
}

fn ablation(cfg: &Cfg) {
    use cypress_core::{compress_trace, merge_all, merge_all_parallel, CompressConfig};
    use cypress_trace::codec::Codec;
    use std::time::Instant;

    println!("\n== Ablations: design choices called out in DESIGN.md ==");
    let mut csv = String::from("ablation,config,value\n");

    // (a) Relative ranking (§IV-B): without it, stencil records differ per
    //     rank and inter-process merging degenerates.
    let p = if cfg.paper { 64 } else { 16 };
    let t = trace_workload("jacobi", p, cfg.scale);
    for (label, relative) in [("relative", true), ("absolute", false)] {
        let c = CompressConfig {
            relative_ranks: relative,
            ..CompressConfig::default()
        };
        let ctts: Vec<_> = t
            .traces
            .iter()
            .map(|tr| compress_trace(&t.info.cst, tr, &c))
            .collect();
        let merged = merge_all(&ctts);
        println!(
            "rank-encoding={label:<9} jacobi@{p}: merged {} B, {} groups",
            merged.encoded_size(),
            merged.group_count()
        );
        writeln!(csv, "rank_encoding,{label},{}", merged.encoded_size()).unwrap();
    }

    // (b) Leaf sliding window (§IV-A): window > 1 folds same-site parameter
    //     alternations at the cost of exact ordering. A single bcast whose
    //     size alternates per iteration is the minimal pattern.
    {
        use cypress_minilang::{check_program, parse};
        use cypress_runtime::{trace_program, InterpConfig};
        let src = "fn main() { for i in 0..200 { bcast(0, 8 + 8 * (i % 2)); } }";
        let prog = parse(src).expect("ablation source parses");
        check_program(&prog).expect("ablation source checks");
        let info = cypress_cst::analyze_program(&prog);
        let traces =
            trace_program(&prog, &info, 1, &InterpConfig::default()).expect("ablation trace");
        for window in [1usize, 2, 8] {
            let c = CompressConfig {
                window,
                ..CompressConfig::default()
            };
            let recs = compress_trace(&info.cst, &traces[0], &c).record_count();
            println!("window={window}: alternating-size bcast records {recs}");
            writeln!(csv, "window,{window},{recs}").unwrap();
        }
    }

    // (c) Sequential vs parallel (binomial) inter-process merge.
    let t = trace_workload("lu", if cfg.paper { 128 } else { 64 }, cfg.scale);
    let ctts: Vec<_> = t
        .traces
        .iter()
        .map(|tr| compress_trace(&t.info.cst, tr, &CompressConfig::default()))
        .collect();
    let t0 = Instant::now();
    let seq = merge_all(&ctts);
    let seq_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let par = merge_all_parallel(&ctts, 8);
    let par_s = t0.elapsed().as_secs_f64();
    assert_eq!(seq.group_count(), par.group_count());
    println!(
        "merge lu@{}: sequential {seq_s:.5}s, parallel(8) {par_s:.5}s",
        t.workload.nprocs
    );
    writeln!(csv, "merge,sequential_s,{seq_s:.6}").unwrap();
    writeln!(csv, "merge,parallel8_s,{par_s:.6}").unwrap();

    save("ablation", &csv);
}

fn fig21(cfg: &Cfg) {
    println!("\n== Fig 21: LESlie3d measured vs predicted execution time ==");
    let mut csv = String::from("nprocs,measured_s,predicted_s,error_pct,comm_pct\n");
    println!(
        "{:>7} {:>12} {:>12} {:>9} {:>8}",
        "procs", "measured(s)", "predicted(s)", "err", "comm%"
    );
    let mut errs = Vec::new();
    for p in procs_for("leslie3d", cfg) {
        let t = trace_workload("leslie3d", p, cfg.scale);
        let pr = predict(&t).unwrap_or_else(|e| panic!("simulation failed at {p}: {e}"));
        println!(
            "{:>7} {:>12.4} {:>12.4} {:>8.2}% {:>7.2}%",
            p,
            pr.measured_s,
            pr.predicted_s,
            pr.error_pct(),
            pr.comm_pct
        );
        writeln!(
            csv,
            "{p},{:.5},{:.5},{:.3},{:.2}",
            pr.measured_s,
            pr.predicted_s,
            pr.error_pct(),
            pr.comm_pct
        )
        .unwrap();
        errs.push(pr.error_pct());
    }
    let avg = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
    println!("average prediction error: {avg:.2}% (paper: 5.9%)");
    save("fig21_prediction", &csv);
}
