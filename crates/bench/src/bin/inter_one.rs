//! Measure inter-process merge cost for a single workload/process-count —
//! used to collect individual paper-scale data points without running the
//! whole Fig. 18 sweep.
//!
//! ```text
//! inter_one <workload> <nprocs> [--paper]
//! ```

use cypress_bench::{inter_overhead, trace_workload};
use cypress_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("sp");
    let nprocs: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Quick
    };
    let t = trace_workload(name, nprocs, scale);
    let events: usize = t.traces.iter().map(|tr| tr.mpi_count()).sum();
    let o = inter_overhead(&t);
    println!(
        "{name}@{nprocs} ({events} events): scalatrace {:.4}s  scalatrace2 {:.4}s  cypress {:.4}s",
        o.scalatrace_s, o.scalatrace2_s, o.cypress_s
    );
}
