//! Minimal benchmark harness (the offline build has no criterion).
//!
//! Each `[[bench]]` target is a plain binary with `harness = false` that
//! calls [`run`] per case. The harness warms up, picks an iteration count
//! targeting a fixed measurement window, takes several samples, and prints
//! one aligned line per case:
//!
//! ```text
//! intra/lu/cypress             5xit  123.4us/iter  (min 120.1us, max 130.0us)
//! ```
//!
//! `CYPRESS_BENCH_FAST=1` shrinks the window for smoke runs (CI runs the
//! benches only for compile checks; numbers come from dedicated runs).

use std::hint::black_box;
use std::time::Instant;

const SAMPLES: usize = 5;

fn target_window_ns() -> u64 {
    if std::env::var("CYPRESS_BENCH_FAST").is_ok() {
        20_000_000 // 20 ms
    } else {
        200_000_000 // 200 ms
    }
}

/// One measured case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub iters: u64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Measure `f`, print one report line, and return the stats. The closure's
/// return value is passed through [`black_box`] so the work is not elided.
pub fn run<T>(name: &str, mut f: impl FnMut() -> T) -> BenchResult {
    // Warmup + calibration: run once, then scale to the target window.
    let t0 = Instant::now();
    black_box(f());
    let once_ns = t0.elapsed().as_nanos().max(1) as u64;
    let window = target_window_ns();
    let iters = (window / once_ns / SAMPLES as u64).clamp(1, 1_000_000);

    let mut samples_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    let mean_ns = samples_ns.iter().sum::<f64>() / SAMPLES as f64;
    let min_ns = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_ns = samples_ns.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name:<44} {iters:>7}xit  {:>10}/iter  (min {}, max {})",
        fmt_ns(mean_ns),
        fmt_ns(min_ns),
        fmt_ns(max_ns),
    );
    BenchResult {
        name: name.to_owned(),
        iters,
        mean_ns,
        min_ns,
        max_ns,
    }
}
