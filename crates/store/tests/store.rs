//! Store correctness: LRU residency, duplicate-open coalescing, exact
//! budget accounting, handle validity across eviction, and the loopback
//! daemon path.

use cypress_core::{compress_trace, merge_all, CompressConfig};
use cypress_cst::analyze_program;
use cypress_minilang::{check_program, parse};
use cypress_query::QueryOptions;
use cypress_runtime::{trace_program, InterpConfig};
use cypress_store::{query_remote, JobStore, QueryClient, StoreConfig, StoreError};
use cypress_trace::{Codec, Container, SectionKind};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A unique, self-cleaning store directory.
struct TempStore(PathBuf);

impl TempStore {
    fn new() -> TempStore {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cypress-store-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempStore(dir)
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Build a complete job container (CST + merged + per-rank CTTs) and write
/// it as `<name>.cytc` under `dir`.
fn write_job(dir: &Path, name: &str, src: &str, nprocs: u32) {
    let prog = parse(src).unwrap();
    check_program(&prog).unwrap();
    let info = analyze_program(&prog);
    let traces = trace_program(&prog, &info, nprocs, &InterpConfig::default()).unwrap();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
        .collect();
    let merged = merge_all(&ctts);
    let mut c = Container::new(nprocs);
    c.push(SectionKind::CstText, None, info.cst.to_text().into_bytes());
    c.push(SectionKind::MergedCtt, None, merged.to_bytes());
    for ctt in &ctts {
        c.push(SectionKind::RankCtt, Some(ctt.rank), ctt.to_bytes());
    }
    c.write_file_with(
        dir.join(format!("{name}.cytc")),
        Some(cypress_deflate::Level::Fast),
    )
    .unwrap();
}

const PROG: &str = r#"fn main() {
    for i in 0..40 {
        if rank() % 2 == 0 { send(rank() + 1, 512, 3); }
        else { recv(rank() - 1, 512, 3); }
        allreduce(16);
    }
}"#;

#[test]
fn open_query_matches_direct_container_query() {
    let tmp = TempStore::new();
    write_job(&tmp.0, "job-a", PROG, 4);
    let store = JobStore::new(&tmp.0, StoreConfig::default()).unwrap();
    let job = store.open("job-a").unwrap();
    let from_store = job.query(&QueryOptions::default()).unwrap();

    let image = std::fs::read(tmp.0.join("job-a.cytc")).unwrap();
    let reference = cypress_query::query_container_bytes(&image, &QueryOptions::default()).unwrap();
    assert_eq!(from_store, reference);
    assert_eq!(from_store.to_bytes(), reference.to_bytes());
}

#[test]
fn hits_require_no_filesystem() {
    let tmp = TempStore::new();
    write_job(&tmp.0, "hot", PROG, 2);
    let store = JobStore::new(&tmp.0, StoreConfig::default()).unwrap();
    let first = store.open("hot").unwrap();
    // Delete the backing file: the resident handle must keep serving.
    std::fs::remove_file(tmp.0.join("hot.cytc")).unwrap();
    let second = store.open("hot").unwrap();
    assert!(Arc::ptr_eq(&first, &second));
    assert!(second.query(&QueryOptions::default()).is_ok());
    let s = store.stats();
    assert_eq!((s.loads, s.hits, s.misses), (1, 1, 1));
}

#[test]
fn lru_evicts_least_recently_used_and_accounts_exactly() {
    let tmp = TempStore::new();
    for name in ["a", "b", "c"] {
        write_job(&tmp.0, name, PROG, 2);
    }
    let store = JobStore::new(
        &tmp.0,
        StoreConfig {
            max_jobs: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let a = store.open("a").unwrap();
    let b = store.open("b").unwrap();
    store.open("a").unwrap(); // a is now more recent than b
    store.open("c").unwrap(); // exceeds max_jobs=2 → evicts b (LRU)
    let mut resident = store.resident_names();
    resident.sort();
    assert_eq!(resident, ["a", "c"]);
    let s = store.stats();
    assert_eq!(s.evictions, 1);
    assert_eq!(s.resident_jobs, 2);
    let expected: usize = ["a", "c"]
        .iter()
        .map(|n| store.open(n).unwrap().resident_bytes())
        .sum();
    assert_eq!(s.resident_bytes, expected, "byte accounting must be exact");

    // The evicted handle is unpinned, not invalidated.
    assert!(b.query(&QueryOptions::default()).is_ok());
    drop(a);
    // Reopening the evicted job is a fresh load.
    let b2 = store.open("b").unwrap();
    assert!(!Arc::ptr_eq(&b, &b2));
    assert_eq!(store.stats().loads, 4);
}

#[test]
fn byte_budget_evicts_to_fit() {
    let tmp = TempStore::new();
    write_job(&tmp.0, "x", PROG, 2);
    write_job(&tmp.0, "y", PROG, 2);
    let probe_store = JobStore::new(&tmp.0, StoreConfig::default()).unwrap();
    let one_job = probe_store.open("x").unwrap().resident_bytes();

    // Budget fits one job but not two.
    let store = JobStore::new(
        &tmp.0,
        StoreConfig {
            max_bytes: one_job + one_job / 2,
            ..Default::default()
        },
    )
    .unwrap();
    store.open("x").unwrap();
    store.open("y").unwrap();
    let s = store.stats();
    assert_eq!(s.evictions, 1);
    assert_eq!(s.resident_jobs, 1);
    assert_eq!(store.resident_names(), ["y"]);
    assert!(s.resident_bytes <= store.config().max_bytes);
}

#[test]
fn duplicate_cold_opens_coalesce_into_one_load() {
    let tmp = TempStore::new();
    write_job(&tmp.0, "shared", PROG, 4);
    let store = Arc::new(JobStore::new(&tmp.0, StoreConfig::default()).unwrap());
    let n = 8;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let store = store.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                store.open("shared").unwrap()
            })
        })
        .collect();
    let jobs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for j in &jobs[1..] {
        assert!(Arc::ptr_eq(&jobs[0], j), "all openers share one handle");
    }
    assert_eq!(store.stats().loads, 1, "exactly one container load");
}

#[test]
fn concurrent_readers_survive_evictions() {
    let tmp = TempStore::new();
    for i in 0..6 {
        write_job(&tmp.0, &format!("job{i}"), PROG, 2);
    }
    let store = Arc::new(
        JobStore::new(
            &tmp.0,
            StoreConfig {
                max_jobs: 1,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let baseline = store
        .open("job0")
        .unwrap()
        .query(&QueryOptions::default())
        .unwrap()
        .to_bytes();

    let readers: Vec<_> = (0..4)
        .map(|t| {
            let store = store.clone();
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for i in 0..20 {
                    // Round-robin opens force constant eviction (max_jobs=1)
                    // while other threads hold and query evicted handles.
                    let job = store.open(&format!("job{}", (t + i) % 6)).unwrap();
                    let got = job.query(&QueryOptions::default()).unwrap().to_bytes();
                    assert_eq!(got, baseline, "all jobs share a program");
                }
            })
        })
        .collect();
    for r in readers {
        r.join().unwrap();
    }
    let s = store.stats();
    assert!(s.resident_jobs <= 1);
    assert!(s.evictions > 0);
}

#[test]
fn invalid_names_and_missing_jobs_are_clean_errors() {
    let tmp = TempStore::new();
    let store = JobStore::new(&tmp.0, StoreConfig::default()).unwrap();
    for bad in ["", "../escape", "a/b", ".hidden"] {
        assert!(
            matches!(store.open(bad), Err(StoreError::Invalid(_))),
            "{bad:?}"
        );
    }
    assert!(matches!(store.open("nope"), Err(StoreError::NotFound(_))));
    assert!(!store.contains("nope"));
}

#[test]
fn list_scans_cytc_stems() {
    let tmp = TempStore::new();
    write_job(&tmp.0, "beta", PROG, 2);
    write_job(&tmp.0, "alpha", PROG, 2);
    std::fs::write(tmp.0.join("notes.txt"), b"ignored").unwrap();
    let store = JobStore::new(&tmp.0, StoreConfig::default()).unwrap();
    assert_eq!(store.list().unwrap(), ["alpha", "beta"]);
    assert!(store.contains("alpha"));
}

#[test]
fn queryd_loopback_byte_identical_and_persistent() {
    let tmp = TempStore::new();
    write_job(&tmp.0, "served", PROG, 4);
    let store = Arc::new(JobStore::new(&tmp.0, StoreConfig::default()).unwrap());
    let local = store
        .open("served")
        .unwrap()
        .query(&QueryOptions::default())
        .unwrap();

    let addr = cypress_net::Addr::parse("127.0.0.1:0").unwrap();
    let server = cypress_store::spawn(store.clone(), &addr).unwrap();
    let timeout = Duration::from_secs(10);

    let mut client = QueryClient::connect(server.addr(), timeout).unwrap();
    // Persistent connection: several requests, including raw-blob identity.
    let raw = client
        .query_raw("served", &QueryOptions::default())
        .unwrap();
    assert_eq!(
        raw,
        local.to_bytes(),
        "remote blob == local canonical bytes"
    );
    let decoded = client.query("served", &QueryOptions::default()).unwrap();
    assert_eq!(decoded, local);
    assert_eq!(decoded.render_json(), local.render_json());

    // Unknown job → clean not-found error frame, connection stays usable.
    let err = client.query("ghost", &QueryOptions::default()).unwrap_err();
    match err {
        StoreError::Remote { code, .. } => {
            assert_eq!(code, cypress_net::proto::codes::NOT_FOUND)
        }
        other => panic!("expected Remote, got {other}"),
    }
    let again = client.query("served", &QueryOptions::default()).unwrap();
    assert_eq!(again, local);

    // One-shot helper.
    let one_shot =
        query_remote(server.addr(), "served", &QueryOptions::default(), timeout).unwrap();
    assert_eq!(one_shot, local);

    assert!(store.stats().hits > 0, "daemon reuses the hot handle");
    server.stop();
}
