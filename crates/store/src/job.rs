//! One opened container, held zero-copy and query-ready.

use crate::StoreError;
use cypress_analysis::{analyze_ctts, AnalyzeOptions, AnalyzeReport};
use cypress_core::{CttSlab, CttSource, MergedCtt};
use cypress_cst::Cst;
use cypress_query::{query_ctts, query_merged, QueryOptions, QueryResult};
use cypress_simmpi::LogGp;
use cypress_trace::{Codec, ContainerError, PayloadArena, SectionKind, SectionTable};
use std::path::Path;

/// A `.cytc` job opened by the store: the raw image in one backing buffer,
/// the parsed section table over it, the inflation arena, and the decoded
/// query inputs (CST + pooled per-rank CTT slabs, or the merged tree).
///
/// Raw sections are never copied out of the image; deflated sections are
/// inflated exactly once into the arena, shared by every reader of this
/// handle. Per-rank CTTs decode into [`CttSlab`]s — index-based vertices
/// over two shared pools — so opening a job costs a handful of allocations
/// regardless of tree size.
///
/// The merged tree is only decoded when the per-rank set is incomplete:
/// a complete set answers every query with exact per-rank timing, and
/// skipping the merged section keeps its (often large) payload un-inflated.
pub struct StoreJob {
    name: String,
    image: Box<[u8]>,
    table: SectionTable,
    arena: PayloadArena,
    cst: Cst,
    slabs: Vec<CttSlab>,
    merged: Option<MergedCtt>,
    complete: bool,
}

impl StoreJob {
    /// Open and fully verify one container file. All per-section CRCs are
    /// checked by the table parse; only the sections a query needs are
    /// inflated/decoded.
    pub fn open(path: &Path, name: &str) -> Result<StoreJob, StoreError> {
        let image = std::fs::read(path)?.into_boxed_slice();
        let table = SectionTable::parse(&image)?;
        let arena = PayloadArena::new(table.len());
        let nprocs = table.nprocs;

        let cst_idx = table
            .find(SectionKind::CstText)
            .ok_or(ContainerError::MissingSection("cst-text"))?;
        let cst_bytes = arena.payload(&image, &table.sections()[cst_idx], cst_idx)?;
        let cst_text = std::str::from_utf8(cst_bytes)
            .map_err(|e| StoreError::Invalid(format!("cst section is not utf-8: {e}")))?;
        let cst = Cst::from_text(cst_text).map_err(StoreError::Invalid)?;

        let mut slabs = Vec::new();
        for idx in table.rank_indices() {
            let payload = arena.payload(&image, &table.sections()[idx], idx)?;
            slabs.push(CttSlab::from_bytes(payload)?);
        }
        let complete = slabs.len() as u32 == nprocs
            && nprocs > 0
            && (0..nprocs).all(|r| slabs.iter().any(|s| s.rank() == r));

        let merged = if complete {
            None
        } else {
            match table.find(SectionKind::MergedCtt) {
                Some(idx) => {
                    let payload = arena.payload(&image, &table.sections()[idx], idx)?;
                    Some(MergedCtt::from_bytes(payload)?)
                }
                None => None,
            }
        };

        Ok(StoreJob {
            name: name.to_string(),
            image,
            table,
            arena,
            cst,
            slabs,
            merged,
            complete,
        })
    }

    /// Evaluate the compressed-domain query suite. Selection matches the
    /// umbrella `LoadedJob::query_with` exactly — a complete per-rank set
    /// is preferred, then the merged tree — and slab evaluation is pinned
    /// byte-identical to owned-CTT evaluation, so daemon answers equal
    /// local ones bit for bit.
    pub fn query(&self, opts: &QueryOptions) -> Result<QueryResult, StoreError> {
        if self.complete {
            return Ok(query_ctts(&self.cst, &self.slabs, opts)?);
        }
        if let Some(merged) = &self.merged {
            return Ok(query_merged(&self.cst, merged, opts)?);
        }
        Err(StoreError::Container(ContainerError::MissingSection(
            "merged-ctt or complete rank-ctt set",
        )))
    }

    /// Run the compressed-domain analysis suite (CTT-native LogGP replay
    /// prediction + late-sender wait states) on this job. Analysis needs
    /// per-rank timing, so it requires the complete per-rank CTT set — the
    /// merged tree cannot drive the simulator. The model is the canonical
    /// [`LogGp::default`], the same one local evaluation uses, so daemon
    /// answers equal local ones bit for bit.
    pub fn analyze(&self, opts: &AnalyzeOptions) -> Result<AnalyzeReport, StoreError> {
        if !self.complete {
            return Err(StoreError::Invalid(format!(
                "job {:?} lacks a complete per-rank CTT set ({} of {} ranks); \
                 analysis needs per-rank timing",
                self.name,
                self.slabs.len(),
                self.table.nprocs
            )));
        }
        // Sections may be stored in any order; analysis wants rank-indexed
        // sources.
        let mut ordered: Vec<&CttSlab> = self.slabs.iter().collect();
        ordered.sort_by_key(|s| s.rank());
        analyze_ctts(&self.cst, &ordered, &LogGp::default(), opts)
            .map_err(|e| StoreError::Invalid(e.to_string()))
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn nprocs(&self) -> u32 {
        self.table.nprocs
    }

    /// Number of per-rank CTT sections decoded.
    pub fn rank_count(&self) -> usize {
        self.slabs.len()
    }

    /// Whether queries run on the complete per-rank set (vs. merged tree).
    pub fn has_complete_rank_set(&self) -> bool {
        self.complete
    }

    /// The parsed CST.
    pub fn cst(&self) -> &Cst {
        &self.cst
    }

    /// Inflations performed for this job so far (0 for all-raw images).
    pub fn inflations(&self) -> u64 {
        self.arena.inflations()
    }

    /// Approximate bytes this handle keeps resident: the backing image,
    /// inflated arena payloads, decoded slab pools, and the merged tree.
    /// This is the figure the store charges against its byte budget.
    pub fn resident_bytes(&self) -> usize {
        self.image.len()
            + self.arena.resident_bytes()
            + self.slabs.iter().map(|s| s.approx_bytes()).sum::<usize>()
            + self.merged.as_ref().map_or(0, |m| m.approx_bytes())
            + self.name.len()
    }
}
