//! The job directory: thousands of `.cytc` files behind an LRU of hot
//! handles.

use crate::{StoreError, StoreJob};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Residency budgets for a [`JobStore`]. Defaults are unbounded.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Maximum simultaneously resident (charged) jobs.
    pub max_jobs: usize,
    /// Maximum total [`StoreJob::resident_bytes`] across resident jobs.
    pub max_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_jobs: usize::MAX,
            max_bytes: usize::MAX,
        }
    }
}

/// A point-in-time snapshot of store counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Opens served from an already-resident handle.
    pub hits: u64,
    /// Opens that found no ready handle (includes waiters that coalesced
    /// onto an in-flight load).
    pub misses: u64,
    /// Jobs unpinned to get back under budget.
    pub evictions: u64,
    /// Actual container loads performed (≤ misses when opens coalesce).
    pub loads: u64,
    /// Currently resident (charged) jobs.
    pub resident_jobs: usize,
    /// Sum of charged bytes across resident jobs.
    pub resident_bytes: usize,
}

/// The load slot for one job name. Concurrent opens of the same name share
/// the cell: exactly one performs the load, the rest block on `get_or_init`
/// and receive the same `Arc`.
type JobCell = Arc<OnceLock<Result<Arc<StoreJob>, String>>>;

struct Entry {
    cell: JobCell,
    /// Monotonic LRU tick of the last open.
    last_use: u64,
    /// Whether this entry's bytes are counted in the store totals. Set once
    /// after a successful load; in-flight loads are never eviction victims.
    charged: bool,
    /// Bytes charged at load time (fixed for the entry's lifetime, so
    /// accounting stays exact even if the arena inflates more later).
    charged_bytes: usize,
}

struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
    resident_jobs: usize,
    resident_bytes: usize,
}

struct StoreObs {
    hits: cypress_obs::Counter,
    misses: cypress_obs::Counter,
    evictions: cypress_obs::Counter,
    loads: cypress_obs::Counter,
    resident_bytes: cypress_obs::Gauge,
    resident_jobs: cypress_obs::Gauge,
}

fn obs() -> &'static StoreObs {
    static OBS: OnceLock<StoreObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let s = cypress_obs::scope("store");
        StoreObs {
            hits: s.counter("hits"),
            misses: s.counter("misses"),
            evictions: s.counter("evictions"),
            loads: s.counter("loads"),
            resident_bytes: s.gauge("resident_bytes"),
            resident_jobs: s.gauge("resident_jobs"),
        }
    })
}

/// A directory of `.cytc` jobs with bounded-residency caching.
///
/// Jobs are addressed by file stem (`<name>.cytc`). Opening a resident job
/// is a map lookup; opening a cold one loads and verifies the container,
/// charges its bytes against the budgets, and evicts least-recently-used
/// residents until back under budget. Eviction only unpins the store's
/// reference — readers holding the `Arc` keep a fully valid handle.
pub struct JobStore {
    root: PathBuf,
    cfg: StoreConfig,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    loads: AtomicU64,
}

impl JobStore {
    /// Open a store over `root` (must be an existing directory).
    pub fn new(root: impl Into<PathBuf>, cfg: StoreConfig) -> Result<JobStore, StoreError> {
        let root = root.into();
        if !root.is_dir() {
            return Err(StoreError::Invalid(format!(
                "store root {} is not a directory",
                root.display()
            )));
        }
        Ok(JobStore {
            root,
            cfg,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                resident_jobs: 0,
                resident_bytes: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            loads: AtomicU64::new(0),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.cytc"))
    }

    /// Whether a `.cytc` file for `name` exists (resident or not).
    pub fn contains(&self, name: &str) -> bool {
        validate_name(name).is_ok() && self.path_of(name).is_file()
    }

    /// All job names in the directory (sorted `.cytc` stems).
    pub fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("cytc") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Open `name`, returning a shared handle. Hot jobs return without
    /// touching the filesystem; concurrent cold opens of the same name
    /// coalesce into a single load.
    pub fn open(&self, name: &str) -> Result<Arc<StoreJob>, StoreError> {
        validate_name(name)?;
        let (cell, was_hit) = {
            let mut g = self.inner.lock().expect("store lock");
            g.tick += 1;
            let tick = g.tick;
            match g.map.get_mut(name) {
                Some(e) => {
                    e.last_use = tick;
                    let hit = matches!(e.cell.get(), Some(Ok(_)));
                    (e.cell.clone(), hit)
                }
                None => {
                    if !self.path_of(name).is_file() {
                        self.note_miss();
                        return Err(StoreError::NotFound(name.to_string()));
                    }
                    let cell: JobCell = Arc::new(OnceLock::new());
                    g.map.insert(
                        name.to_string(),
                        Entry {
                            cell: cell.clone(),
                            last_use: tick,
                            charged: false,
                            charged_bytes: 0,
                        },
                    );
                    (cell, false)
                }
            }
        };
        if was_hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if cypress_obs::enabled() {
                obs().hits.inc();
            }
        } else {
            self.note_miss();
        }

        let mut loaded_here = false;
        let result = cell.get_or_init(|| {
            loaded_here = true;
            self.loads.fetch_add(1, Ordering::Relaxed);
            if cypress_obs::enabled() {
                obs().loads.inc();
            }
            StoreJob::open(&self.path_of(name), name)
                .map(Arc::new)
                .map_err(|e| e.to_string())
        });
        match result {
            Ok(job) => {
                let job = job.clone();
                if loaded_here {
                    self.charge_and_evict(name, &cell, &job);
                }
                Ok(job)
            }
            Err(msg) => {
                // Drop the failed entry so a later open retries the load
                // (e.g. after the file is rewritten). Guarded by cell
                // identity so we never remove a successful reload.
                let mut g = self.inner.lock().expect("store lock");
                if let Some(e) = g.map.get(name) {
                    if Arc::ptr_eq(&e.cell, &cell) && !e.charged {
                        g.map.remove(name);
                    }
                }
                Err(StoreError::Invalid(format!("open {name}: {msg}")))
            }
        }
    }

    fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if cypress_obs::enabled() {
            obs().misses.inc();
        }
    }

    /// Charge a freshly loaded job against the budgets, then evict LRU
    /// residents (never the job just loaded, never in-flight loads) until
    /// back under budget.
    fn charge_and_evict(&self, name: &str, cell: &JobCell, job: &Arc<StoreJob>) {
        let mut g = self.inner.lock().expect("store lock");
        let Some(e) = g.map.get_mut(name) else {
            return;
        };
        if !Arc::ptr_eq(&e.cell, cell) || e.charged {
            return;
        }
        e.charged = true;
        e.charged_bytes = job.resident_bytes();
        let charged = e.charged_bytes;
        g.resident_jobs += 1;
        g.resident_bytes += charged;

        while g.resident_jobs > self.cfg.max_jobs || g.resident_bytes > self.cfg.max_bytes {
            let victim = g
                .map
                .iter()
                .filter(|(k, e)| e.charged && k.as_str() != name)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else {
                break; // nothing evictable; the one new job may exceed alone
            };
            let e = g.map.remove(&victim).expect("victim present");
            g.resident_jobs -= 1;
            g.resident_bytes -= e.charged_bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if cypress_obs::enabled() {
                obs().evictions.inc();
            }
        }
        if cypress_obs::enabled() {
            let o = obs();
            o.resident_jobs.set(g.resident_jobs as i64);
            o.resident_bytes.set(g.resident_bytes as i64);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let g = self.inner.lock().expect("store lock");
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            resident_jobs: g.resident_jobs,
            resident_bytes: g.resident_bytes,
        }
    }

    /// Names currently resident (charged), unordered. Test/diagnostic aid.
    pub fn resident_names(&self) -> Vec<String> {
        let g = self.inner.lock().expect("store lock");
        g.map
            .iter()
            .filter(|(_, e)| e.charged)
            .map(|(k, _)| k.clone())
            .collect()
    }
}

/// Job names are bare file stems: no path separators, no traversal, no
/// hidden files. Keeps `open("../../etc/passwd")` a clean error.
fn validate_name(name: &str) -> Result<(), StoreError> {
    if name.is_empty()
        || name.contains('/')
        || name.contains('\\')
        || name.contains('\0')
        || name.starts_with('.')
    {
        return Err(StoreError::Invalid(format!("invalid job name {name:?}")));
    }
    Ok(())
}
