//! The resident query daemon: a [`JobStore`] served over the net
//! transport's framed protocol.
//!
//! One connection handles any number of `QueryRequest` and
//! `AnalyzeRequest` frames until the client disconnects — the handle stays
//! hot in the store across requests, which is the whole point of a
//! resident daemon. Failures map onto protocol error frames: unknown job →
//! `not-found`, malformed options → `protocol`, anything else →
//! `internal`; the connection stays open after an error reply, so a
//! scripted client can probe jobs cheaply. Frame codes from a newer client
//! (decoded as `Frame::Unknown`) also get a `protocol` error reply with
//! the connection kept alive — that is the whole version-negotiation story
//! on this port, which exchanges no `Hello`.

use crate::{JobStore, StoreError};
use cypress_analysis::{AnalyzeOptions, AnalyzeReport};
use cypress_net::proto::{codes, read_frame, send_error, write_frame};
use cypress_net::{Addr, Frame, Listener, NetError, Stream};
use cypress_query::{QueryOptions, QueryResult};
use cypress_trace::Codec;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval for the nonblocking accept loop and the per-connection
/// read timeout; both bound how long shutdown can take.
const POLL: Duration = Duration::from_millis(50);

/// A running daemon. Dropping (or calling [`ServerHandle::stop`]) signals
/// the accept loop and every connection handler, then joins them.
pub struct ServerHandle {
    addr: Addr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The resolved listen address (useful with `host:0` ephemeral binds).
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Signal shutdown and wait for the accept loop and all connection
    /// handlers to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` and serve `store` on a background thread.
pub fn spawn(store: Arc<JobStore>, addr: &Addr) -> Result<ServerHandle, StoreError> {
    let listener = Listener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let thread = std::thread::spawn(move || accept_loop(listener, store, stop2));
    Ok(ServerHandle {
        addr: local,
        stop,
        thread: Some(thread),
    })
}

fn accept_loop(listener: Listener, store: Arc<JobStore>, stop: Arc<AtomicBool>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let store = store.clone();
                let stop = stop.clone();
                handlers.push(std::thread::spawn(move || {
                    handle_conn(stream, store, stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Serve one connection until EOF, error, or shutdown.
fn handle_conn(mut stream: Stream, store: Arc<JobStore>, stop: Arc<AtomicBool>) {
    // A short read timeout doubles as the shutdown poll: an idle persistent
    // connection wakes every POLL to check the stop flag.
    if stream.set_io_timeout(POLL).is_err() {
        return;
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            stream.shutdown();
            return;
        }
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(NetError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return, // EOF, torn frame, or dead peer
        };
        match frame {
            Frame::QueryRequest { job, options } => {
                let opts = match QueryOptions::from_bytes(&options) {
                    Ok(o) => o,
                    Err(e) => {
                        send_error(&mut stream, codes::PROTOCOL, format!("bad options: {e}"));
                        continue;
                    }
                };
                match run_query(&store, &job, &opts) {
                    Ok(result) => {
                        if write_frame(&mut stream, &Frame::QueryResponse { result }).is_err() {
                            return;
                        }
                    }
                    Err(e) => reply_store_error(&mut stream, e),
                }
            }
            Frame::AnalyzeRequest { job, options } => {
                let opts = match AnalyzeOptions::from_bytes(&options) {
                    Ok(o) => o,
                    Err(e) => {
                        send_error(&mut stream, codes::PROTOCOL, format!("bad options: {e}"));
                        continue;
                    }
                };
                match run_analyze(&store, &job, &opts) {
                    Ok(result) => {
                        if write_frame(&mut stream, &Frame::AnalyzeResponse { result }).is_err() {
                            return;
                        }
                    }
                    Err(e) => reply_store_error(&mut stream, e),
                }
            }
            // A frame code from a newer client (e.g. an analysis kind this
            // build predates): answer with the ordinary protocol error frame
            // and keep serving — the client learns the capability is missing
            // without losing the connection.
            Frame::Unknown { code } => {
                send_error(
                    &mut stream,
                    codes::PROTOCOL,
                    format!("unsupported frame code {code}"),
                );
            }
            f => {
                send_error(
                    &mut stream,
                    codes::PROTOCOL,
                    format!("unexpected {} frame", f.name()),
                );
                return;
            }
        }
    }
}

fn reply_store_error(stream: &mut Stream, e: StoreError) {
    match e {
        StoreError::NotFound(name) => {
            send_error(stream, codes::NOT_FOUND, format!("job {name:?} not found"));
        }
        e => send_error(stream, codes::INTERNAL, e.to_string()),
    }
}

fn run_query(store: &JobStore, job: &str, opts: &QueryOptions) -> Result<Vec<u8>, StoreError> {
    let handle = store.open(job)?;
    let result: QueryResult = handle.query(opts)?;
    Ok(result.to_bytes())
}

fn run_analyze(store: &JobStore, job: &str, opts: &AnalyzeOptions) -> Result<Vec<u8>, StoreError> {
    let handle = store.open(job)?;
    let result: AnalyzeReport = handle.analyze(opts)?;
    Ok(result.to_bytes())
}
