//! Client side of the query daemon protocol.

use crate::StoreError;
use cypress_analysis::{AnalyzeOptions, AnalyzeReport};
use cypress_net::proto::{read_frame, write_frame};
use cypress_net::{Addr, Frame, Stream};
use cypress_query::{QueryOptions, QueryResult};
use cypress_trace::Codec;
use std::time::Duration;

/// A persistent connection to a `cypress queryd` daemon. One connection
/// serves any number of queries; the daemon keeps queried jobs hot across
/// requests on the same (or any other) connection.
pub struct QueryClient {
    stream: Stream,
}

impl QueryClient {
    /// Connect with `timeout` applied to the dial and to each request's
    /// reads/writes.
    pub fn connect(addr: &Addr, timeout: Duration) -> Result<QueryClient, StoreError> {
        let stream = Stream::connect(addr, timeout)?;
        stream.set_io_timeout(timeout)?;
        Ok(QueryClient { stream })
    }

    /// Query one job, returning the raw self-versioned result blob —
    /// exactly the bytes the daemon computed, for byte-identity checks
    /// against local evaluation.
    pub fn query_raw(&mut self, job: &str, opts: &QueryOptions) -> Result<Vec<u8>, StoreError> {
        write_frame(
            &mut self.stream,
            &Frame::QueryRequest {
                job: job.to_string(),
                options: opts.to_bytes(),
            },
        )?;
        match read_frame(&mut self.stream)? {
            Frame::QueryResponse { result } => Ok(result),
            Frame::Error { code, message } => Err(StoreError::Remote { code, message }),
            f => Err(StoreError::Invalid(format!(
                "unexpected {} frame from daemon",
                f.name()
            ))),
        }
    }

    /// Query one job and decode the answer.
    pub fn query(&mut self, job: &str, opts: &QueryOptions) -> Result<QueryResult, StoreError> {
        let blob = self.query_raw(job, opts)?;
        Ok(QueryResult::from_bytes(&blob)?)
    }

    /// Run the compressed-domain analysis suite on one job, returning the
    /// raw self-versioned report blob — exactly the bytes the daemon
    /// computed, for byte-identity checks against local evaluation.
    pub fn analyze_raw(&mut self, job: &str, opts: &AnalyzeOptions) -> Result<Vec<u8>, StoreError> {
        write_frame(
            &mut self.stream,
            &Frame::AnalyzeRequest {
                job: job.to_string(),
                options: opts.to_bytes(),
            },
        )?;
        match read_frame(&mut self.stream)? {
            Frame::AnalyzeResponse { result } => Ok(result),
            Frame::Error { code, message } => Err(StoreError::Remote { code, message }),
            f => Err(StoreError::Invalid(format!(
                "unexpected {} frame from daemon",
                f.name()
            ))),
        }
    }

    /// Analyze one job and decode the report.
    pub fn analyze(
        &mut self,
        job: &str,
        opts: &AnalyzeOptions,
    ) -> Result<AnalyzeReport, StoreError> {
        let blob = self.analyze_raw(job, opts)?;
        Ok(AnalyzeReport::from_bytes(&blob)?)
    }
}

/// One-shot convenience: connect, query once, disconnect.
pub fn query_remote(
    addr: &Addr,
    job: &str,
    opts: &QueryOptions,
    timeout: Duration,
) -> Result<QueryResult, StoreError> {
    QueryClient::connect(addr, timeout)?.query(job, opts)
}

/// One-shot convenience: connect, analyze once, disconnect.
pub fn analyze_remote(
    addr: &Addr,
    job: &str,
    opts: &AnalyzeOptions,
    timeout: Duration,
) -> Result<AnalyzeReport, StoreError> {
    QueryClient::connect(addr, timeout)?.analyze(job, opts)
}
