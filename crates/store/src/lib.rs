//! # cypress-store — zero-copy trace store and resident query daemon
//!
//! A `.cytc` container is a directly servable analysis artifact; this crate
//! makes serving *directories* of them cheap:
//!
//! * [`StoreJob`] — one opened container held zero-copy: the backing image
//!   stays in one buffer, raw sections are served as slices of it, deflated
//!   sections inflate exactly once into a [`cypress_trace::PayloadArena`]
//!   owned by the handle, and per-rank CTTs decode into pooled
//!   [`cypress_core::CttSlab`]s instead of per-node heap allocations.
//!   [`StoreJob::query`] replicates the umbrella `LoadedJob::query`
//!   selection exactly, so answers are byte-identical.
//! * [`JobStore`] — a directory of jobs behind an LRU of hot handles with
//!   byte- and entry-count budgets ([`StoreConfig`]), duplicate-open
//!   coalescing, and hit/miss/eviction metrics ([`StoreStats`], mirrored
//!   into the `store` observability scope).
//! * [`serve`]/[`spawn`] + [`QueryClient`] — `cypress queryd`: the store
//!   served over the net transport's versioned frames
//!   (`QueryRequest`/`QueryResponse` with self-versioned option/result
//!   blobs), persistent connections, clean protocol errors.
//!
//! Evicted jobs are only *unpinned*: readers holding an `Arc<StoreJob>`
//! keep a valid handle; memory is reclaimed when the last clone drops.

mod client;
mod job;
mod serve;
mod store;

pub use client::{analyze_remote, query_remote, QueryClient};
pub use job::StoreJob;
pub use serve::{spawn, ServerHandle};
pub use store::{JobStore, StoreConfig, StoreStats};

use cypress_query::QueryError;
use cypress_trace::{ContainerError, DecodeError};
use std::fmt;

/// Store failures, layered like the rest of the workspace.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem I/O (reading images, scanning the store directory).
    Io(std::io::Error),
    /// Container framing/CRC/section problems.
    Container(ContainerError),
    /// Malformed codec bytes inside a section or a wire blob.
    Decode(DecodeError),
    /// Compressed-domain query failure.
    Query(QueryError),
    /// Transport or frame-level failure talking to a daemon.
    Net(cypress_net::NetError),
    /// The named job has no `.cytc` file in the store directory.
    NotFound(String),
    /// The daemon rejected the request with a protocol error frame.
    Remote { code: u16, message: String },
    /// Bad input: invalid job name, malformed CST text, config misuse.
    Invalid(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Container(e) => write!(f, "store container error: {e}"),
            StoreError::Decode(e) => write!(f, "store decode error: {e}"),
            StoreError::Query(e) => write!(f, "store query error: {e}"),
            StoreError::Net(e) => write!(f, "store net error: {e}"),
            StoreError::NotFound(name) => write!(f, "job {name:?} not found in store"),
            StoreError::Remote { code, message } => write!(
                f,
                "daemon rejected request ({}): {message}",
                cypress_net::proto::codes::name(*code)
            ),
            StoreError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Container(e) => Some(e),
            StoreError::Decode(e) => Some(e),
            StoreError::Query(e) => Some(e),
            StoreError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ContainerError> for StoreError {
    fn from(e: ContainerError) -> Self {
        StoreError::Container(e)
    }
}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> Self {
        StoreError::Decode(e)
    }
}

impl From<QueryError> for StoreError {
    fn from(e: QueryError) -> Self {
        StoreError::Query(e)
    }
}

impl From<cypress_net::NetError> for StoreError {
    fn from(e: cypress_net::NetError) -> Self {
        StoreError::Net(e)
    }
}
