//! CTT → [`Schedule`] lowering: turn compressed loop structure into a
//! compact simulation input without unrolling it.
//!
//! The walker mirrors `cypress_core::decompress` vertex for vertex — same
//! visit counters, same reader consumption — but treats each top-level
//! (root-child) non-pseudo loop as a candidate for *symbolic* lowering:
//! instead of replaying `n` iterations it replays iteration 1 on cloned
//! cursors, journals exactly which per-vertex data that iteration consumed,
//! and then proves in O(segments) — via [`IntSeqReader::take_arith`] — that
//! iterations `2..n` would consume *identical* data:
//!
//! * every inner loop draws the same constant trip count each iteration,
//! * every branch repeats its iteration-1 taken/not-taken decision (its
//!   stored taken-index sequence continues arithmetically, and no extra
//!   takes hide in the remaining values),
//! * every leaf keeps drawing from the same merged record, which has enough
//!   occurrences left for all `n` iterations.
//!
//! When the proof succeeds the loop becomes [`Segment::Loop`] carrying one
//! body and a trip count — the replayed op stream is *provably identical*
//! to full decompression, so schedule-driven simulation stays exact. When
//! any check fails the loop is unrolled concretely; when the CST contains
//! recursion pseudo-loops (replay is multiset- not sequence-exact) the
//! whole job falls back to full decompression, matching the query engine's
//! partial-expansion rule.

use cypress_core::{decompress, Ctt, CttSource, IntSeqReader, VertexData};
use cypress_cst::tree::{Cst, VertexKind};
use cypress_query::needs_expansion;
use cypress_simmpi::{Schedule, Segment, SimOp};
use std::collections::HashMap;

/// How lowering handled the job's structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoweringStats {
    /// Top-level loops lowered to [`Segment::Loop`] (trip counts applied
    /// arithmetically by the scheduler).
    pub symbolic_loops: u32,
    /// Top-level loops whose uniformity proof failed and were unrolled.
    pub unrolled_loops: u32,
    /// True when recursion pseudo-loops forced whole-job decompression.
    pub flattened: bool,
}

/// Convert one replayed op into simulator input: the compressed gap
/// statistic becomes the compute time, the op itself is costed by LogGP.
/// This is exactly the conversion the decompress-then-simulate oracle uses.
pub fn replay_to_simop(
    gid: u32,
    rec_op: cypress_trace::event::MpiOp,
    params: cypress_trace::event::MpiParams,
    mean_gap: u64,
) -> SimOp {
    SimOp {
        gid,
        op: rec_op,
        params,
        pre_gap: mean_gap,
    }
}

/// Lower a job's per-rank CTTs into a [`Schedule`].
///
/// The flattened schedule always equals full decompression of every rank
/// (`cypress_core::decompress` → op conversion); symbolic segments are only
/// produced where that equality is proven.
pub fn lower_schedule<S: CttSource>(cst: &Cst, sources: &[S]) -> (Schedule, LoweringStats) {
    let nprocs = sources.len() as u32;
    let mut stats = LoweringStats::default();

    if needs_expansion(cst) {
        // Recursion: pseudo-loop replay redistributes leaf occurrences
        // across visits, so only the sequential decompressor is faithful.
        stats.flattened = true;
        let ops = sources
            .iter()
            .map(|s| {
                let ctt = s.as_ctt();
                decompress(cst, &ctt)
                    .into_iter()
                    .map(|o| replay_to_simop(o.gid, o.op, o.params, o.mean_gap))
                    .collect()
            })
            .collect();
        return (
            Schedule {
                nprocs,
                segments: vec![Segment::Straight(ops)],
            },
            stats,
        );
    }

    let owned: Vec<_> = sources.iter().map(|s| s.as_ctt()).collect();
    let mut walkers: Vec<Walker<'_>> = owned.iter().map(|c| Walker::new(cst, c)).collect();
    let mut segments = Vec::new();
    // Ops accumulated for the pending Straight segment, per rank.
    let mut pending: Vec<Vec<SimOp>> = vec![Vec::new(); nprocs as usize];

    let root_children = cst.vertex(0).children.clone();
    for c in root_children {
        let symbolic_trips = match &cst.vertex(c).kind {
            VertexKind::Loop { pseudo: false, .. } => uniform_trips(&walkers, c),
            _ => None,
        };
        if let Some(n) = symbolic_trips {
            let attempts: Vec<_> = walkers.iter().map(|w| w.try_symbolic(c, n)).collect();
            if attempts.iter().all(Option::is_some) {
                if pending.iter().any(|p| !p.is_empty()) {
                    segments.push(Segment::Straight(std::mem::replace(
                        &mut pending,
                        vec![Vec::new(); nprocs as usize],
                    )));
                }
                let mut body = Vec::with_capacity(nprocs as usize);
                for (w, a) in walkers.iter_mut().zip(attempts) {
                    let (ops, advanced) = a.unwrap();
                    *w = advanced;
                    body.push(ops);
                }
                segments.push(Segment::Loop { trips: n, body });
                stats.symbolic_loops += 1;
                continue;
            }
            stats.unrolled_loops += 1;
        }
        for (w, p) in walkers.iter_mut().zip(pending.iter_mut()) {
            w.visit(c, p);
        }
    }
    if pending.iter().any(|p| !p.is_empty()) {
        segments.push(Segment::Straight(pending));
    }
    (Schedule { nprocs, segments }, stats)
}

/// The trip count of top-level loop `c` if every rank stores the same
/// positive value (≥ 2 — smaller loops gain nothing from a symbolic body).
fn uniform_trips(walkers: &[Walker<'_>], c: usize) -> Option<u64> {
    let mut n = None;
    for w in walkers {
        let t = w.loops[c]
            .as_ref()
            .and_then(|r| r.clone().peek())
            .unwrap_or(0);
        if t < 2 {
            return None;
        }
        match n {
            None => n = Some(t as u64),
            Some(prev) if prev != t as u64 => return None,
            _ => {}
        }
    }
    n
}

/// What one trial iteration consumed, per vertex.
#[derive(Default)]
struct Journal {
    /// Loop GID → trip-count values consumed, in visit order.
    loops: HashMap<usize, Vec<i64>>,
    /// Branch GID → (parent visit index, taken) per visit, in order.
    branches: HashMap<usize, Vec<(i64, bool)>>,
    /// Leaf GID → (record index drawn from, uses, spans-records-or-exhausted).
    leaves: HashMap<usize, (usize, u64, bool)>,
    /// Vertex GID → visit-counter increment during the iteration.
    visit_delta: HashMap<usize, u64>,
}

#[derive(Clone)]
struct Walker<'a> {
    cst: &'a Cst,
    ctt: &'a Ctt,
    rank: i64,
    loops: Vec<Option<IntSeqReader<'a>>>,
    branches: Vec<Option<IntSeqReader<'a>>>,
    /// Leaf cursor per vertex: (record index, occurrences used).
    leaves: Vec<(usize, u64)>,
    visits: Vec<u64>,
}

impl<'a> Walker<'a> {
    fn new(cst: &'a Cst, ctt: &'a Ctt) -> Walker<'a> {
        assert_eq!(cst.len(), ctt.data.len(), "CTT shape must match CST");
        Walker {
            cst,
            ctt,
            rank: ctt.rank as i64,
            loops: ctt
                .data
                .iter()
                .map(|vd| match vd {
                    VertexData::Loop { counts } => Some(counts.reader()),
                    _ => None,
                })
                .collect(),
            branches: ctt
                .data
                .iter()
                .map(|vd| match vd {
                    VertexData::Branch { taken } => Some(taken.reader()),
                    _ => None,
                })
                .collect(),
            leaves: vec![(0, 0); cst.len()],
            visits: {
                let mut v = vec![0u64; cst.len()];
                v[0] = 1;
                v
            },
        }
    }

    /// Concrete walk of vertex `v`, mirroring `decompress` exactly.
    fn visit(&mut self, v: usize, out: &mut Vec<SimOp>) {
        self.visit_inner(v, out, None);
    }

    fn visit_children(
        &mut self,
        v: usize,
        out: &mut Vec<SimOp>,
        journal: &mut Option<&mut Journal>,
    ) {
        let children = self.cst.vertex(v).children.clone();
        for c in children {
            self.visit_inner(c, out, journal.as_deref_mut());
        }
    }

    fn visit_inner(&mut self, v: usize, out: &mut Vec<SimOp>, journal: Option<&mut Journal>) {
        let mut journal = journal;
        match &self.cst.vertex(v).kind {
            VertexKind::Root | VertexKind::UserCall { .. } => {
                unreachable!("root/user-call vertices are never visited as children")
            }
            VertexKind::Loop { .. } => {
                let raw = self.loops[v].as_mut().and_then(|r| r.next());
                if let Some(j) = journal.as_deref_mut() {
                    j.loops.entry(v).or_default().push(raw.unwrap_or(0));
                }
                let n = raw.unwrap_or(0).max(0) as u64;
                for _ in 0..n {
                    self.bump_visit(v, &mut journal);
                    self.visit_children(v, out, &mut journal);
                }
            }
            VertexKind::Branch { .. } => {
                let parent = self.cst.vertex(v).parent.expect("branches have parents");
                let parent_idx = self.visits[parent].saturating_sub(1) as i64;
                let taken = self.branches[v]
                    .as_mut()
                    .map(|r| {
                        if r.peek() == Some(parent_idx) {
                            r.next();
                            true
                        } else {
                            false
                        }
                    })
                    .unwrap_or(false);
                if let Some(j) = journal.as_deref_mut() {
                    j.branches.entry(v).or_default().push((parent_idx, taken));
                }
                if taken {
                    self.bump_visit(v, &mut journal);
                    self.visit_children(v, out, &mut journal);
                }
            }
            VertexKind::Mpi { .. } => {
                let VertexData::Leaf { records } = &self.ctt.data[v] else {
                    return;
                };
                let (rec, used) = &mut self.leaves[v];
                while *rec < records.len() && *used >= records[*rec].count {
                    *rec += 1;
                    *used = 0;
                }
                if *rec >= records.len() {
                    // Exhausted stream (recursion approximation); a symbolic
                    // trial must refuse — concrete decompression emits
                    // nothing here and later iterations could differ.
                    if let Some(j) = journal {
                        j.leaves.entry(v).or_insert((*rec, 0, true)).2 = true;
                    }
                    return;
                }
                let r = &records[*rec];
                *used += 1;
                if let Some(j) = journal {
                    let e = j.leaves.entry(v).or_insert((*rec, 0, false));
                    if e.0 != *rec {
                        e.2 = true;
                    }
                    e.1 += 1;
                }
                out.push(replay_to_simop(
                    v as u32,
                    r.params.op,
                    r.params.decode(self.rank),
                    r.gap.mean().round() as u64,
                ));
            }
        }
    }

    fn bump_visit(&mut self, v: usize, journal: &mut Option<&mut Journal>) {
        self.visits[v] += 1;
        if let Some(j) = journal.as_deref_mut() {
            *j.visit_delta.entry(v).or_insert(0) += 1;
        }
    }

    /// Attempt symbolic lowering of top-level loop `c` with `n` uniform
    /// trips: replay iteration 1 on a clone, then prove iterations `2..n`
    /// consume identical data and apply their consumption in bulk. Returns
    /// the single-iteration body and the advanced walker, or `None` if any
    /// uniformity check fails (caller falls back to concrete unrolling on
    /// `self`, which is left untouched).
    fn try_symbolic(&self, c: usize, n: u64) -> Option<(Vec<SimOp>, Walker<'a>)> {
        let mut w = self.clone();
        // Consume the loop's own (single) trip-count value.
        let got = w.loops[c].as_mut().and_then(|r| r.next()).unwrap_or(0);
        debug_assert_eq!(got.max(0) as u64, n);

        // Trial-replay iteration 1, journaling per-vertex consumption.
        let mut journal = Journal::default();
        let mut ops = Vec::new();
        w.visits[c] += 1;
        *journal.visit_delta.entry(c).or_insert(0) += 1;
        {
            let mut j = Some(&mut journal);
            w.visit_children(c, &mut ops, &mut j);
        }

        // Inner loops: every visit must have drawn one constant value, and
        // the next (n-1)·k stored values must all equal it.
        for (&v, vals) in &journal.loops {
            let first = *vals.first()?;
            if vals.iter().any(|&x| x != first) {
                return None;
            }
            let k = vals.len() as u64;
            match w.loops[v].as_mut() {
                Some(r) => {
                    if !r.take_arith((n - 1) * k, first, 0) {
                        return None;
                    }
                }
                // No stored counts: every draw is 0, trivially uniform.
                None if first == 0 => {}
                None => return None,
            }
        }

        // Branches: the taken-index sequence must continue as the exact
        // arithmetic image of iteration 1's decisions, with no extra takes
        // left anywhere in this loop's index range.
        for (&v, log) in &journal.branches {
            let parent = self.cst.vertex(v).parent.expect("branches have parents");
            let dp = *journal.visit_delta.get(&parent)? as i64;
            let taken: Vec<i64> = log.iter().filter(|(_, t)| *t).map(|(q, _)| *q).collect();
            let v_end = (w.visits[parent] as i64) + (n as i64 - 1) * dp;
            if w.branches[v].is_none() {
                // No stored taken indexes: never taken, trivially uniform.
                debug_assert!(taken.is_empty());
                continue;
            }
            if !taken.is_empty() {
                let q1 = taken[0];
                let qt = *taken.last().unwrap();
                let stride = if taken.len() == 1 {
                    dp
                } else {
                    let s = taken[1] - taken[0];
                    if taken.windows(2).any(|p| p[1] - p[0] != s) || q1 + dp - qt != s {
                        return None;
                    }
                    s
                };
                let m = (n - 1) * taken.len() as u64;
                if !w.branches[v].as_mut()?.take_arith(m, q1 + dp, stride) {
                    return None;
                }
            }
            // Guard against decisions flipping in later iterations: any
            // remaining taken index must lie beyond this loop entirely.
            if let Some(next) = w.branches[v].as_mut()?.peek() {
                if next < v_end {
                    return None;
                }
            }
        }

        // Leaves: all iteration-1 uses came from one record, which must
        // hold enough occurrences for every remaining iteration.
        for (&v, &(rec, uses, bad)) in &journal.leaves {
            if bad || uses == 0 {
                return None;
            }
            let VertexData::Leaf { records } = &w.ctt.data[v] else {
                return None;
            };
            let (cur_rec, cur_used) = &mut w.leaves[v];
            debug_assert_eq!(*cur_rec, rec);
            let need = (n - 1) * uses;
            if records[rec].count - *cur_used < need {
                return None;
            }
            *cur_used += need;
        }

        // Visit counters advance uniformly per iteration.
        for (&v, &d) in &journal.visit_delta {
            w.visits[v] += (n - 1) * d;
        }
        Some((ops, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_core::{compress_trace, CompressConfig};
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};

    fn compile(src: &str, nprocs: u32) -> (Cst, Vec<Ctt>) {
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        let ctts = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        (info.cst, ctts)
    }

    fn oracle_ops(cst: &Cst, ctts: &[Ctt]) -> Vec<Vec<SimOp>> {
        ctts.iter()
            .map(|c| {
                decompress(cst, c)
                    .into_iter()
                    .map(|o| replay_to_simop(o.gid, o.op, o.params, o.mean_gap))
                    .collect()
            })
            .collect()
    }

    fn assert_flatten_matches(src: &str, nprocs: u32, want_symbolic: bool) {
        let (cst, ctts) = compile(src, nprocs);
        let (sched, stats) = lower_schedule(&cst, &ctts);
        assert_eq!(
            sched.flatten(),
            oracle_ops(&cst, &ctts),
            "lowered schedule diverges from decompression"
        );
        if want_symbolic {
            assert!(
                stats.symbolic_loops > 0,
                "expected symbolic lowering, stats {stats:?}"
            );
        }
    }

    #[test]
    fn uniform_stencil_lowers_symbolically() {
        assert_flatten_matches(
            r#"fn main() {
                for it in 0..50 {
                    if rank() > 0 { send(rank() - 1, 2048, 0); }
                    if rank() < size() - 1 { recv(rank() + 1, 2048, 0); }
                    allreduce(16);
                }
                barrier();
            }"#,
            5,
            true,
        );
    }

    #[test]
    fn nested_constant_loops_lower_symbolically() {
        assert_flatten_matches(
            r#"fn main() {
                for i in 0..30 {
                    for j in 0..4 {
                        send((rank() + 1) % size(), 64, 0);
                        recv((rank() + size() - 1) % size(), 64, 0);
                    }
                    bcast(0, 8);
                }
            }"#,
            3,
            true,
        );
    }

    #[test]
    fn varying_leaf_params_unroll_but_stay_exact() {
        // `tag = j` prevents record merging, so the CTT is already O(trips)
        // at this leaf — symbolic lowering must refuse (the merged-record
        // uniformity check fails) and unrolling costs no more than the CTT.
        let (cst, ctts) = compile(
            r#"fn main() {
                for i in 0..10 {
                    for j in 0..4 {
                        send((rank() + 1) % size(), 64, j);
                        recv((rank() + size() - 1) % size(), 64, j);
                    }
                }
            }"#,
            3,
        );
        let (sched, stats) = lower_schedule(&cst, &ctts);
        assert_eq!(sched.flatten(), oracle_ops(&cst, &ctts));
        assert_eq!(stats.symbolic_loops, 0);
        assert_eq!(stats.unrolled_loops, 1);
    }

    #[test]
    fn varying_inner_loop_unrolls_but_stays_exact() {
        let (cst, ctts) = compile(
            r#"fn main() {
                for i in 0..8 {
                    for j in 0..i { barrier(); }
                    bcast(0, 64);
                }
            }"#,
            2,
        );
        let (sched, stats) = lower_schedule(&cst, &ctts);
        assert_eq!(sched.flatten(), oracle_ops(&cst, &ctts));
        assert_eq!(stats.symbolic_loops, 0);
        assert_eq!(stats.unrolled_loops, 1);
    }

    #[test]
    fn alternating_branches_unroll_but_stay_exact() {
        assert_flatten_matches(
            r#"fn main() {
                for i in 0..17 {
                    if i % 3 == 0 { barrier(); }
                    else { allreduce(4); }
                }
            }"#,
            2,
            false,
        );
    }

    #[test]
    fn rank_dependent_trips_fall_back_exactly() {
        assert_flatten_matches(
            r#"fn main() {
                for i in 0..rank() + 2 {
                    send((rank() + 1) % size(), 32, 0);
                }
                for i in 0..rank() + 2 {
                    recv(any_source(), 32, 0);
                }
            }"#,
            4,
            false,
        );
    }

    #[test]
    fn recursion_flattens_whole_job() {
        let (cst, ctts) = compile(
            r#"
            fn updown(n) {
                if n > 0 { bcast(0, 16); updown(n - 1); reduce(0, 16); }
            }
            fn main() { updown(5); }
            "#,
            2,
        );
        let (sched, stats) = lower_schedule(&cst, &ctts);
        assert!(stats.flattened);
        assert_eq!(sched.flatten(), oracle_ops(&cst, &ctts));
    }

    #[test]
    fn mixed_top_level_segments_preserve_order() {
        assert_flatten_matches(
            r#"fn main() {
                barrier();
                for i in 0..20 { allreduce(8); }
                bcast(0, 128);
                for i in 0..10 { alltoall(32); }
                reduce(0, 8);
            }"#,
            3,
            true,
        );
    }
}
