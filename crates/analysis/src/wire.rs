//! Canonical wire and JSON serializations of analysis inputs and answers.
//!
//! Same conventions as `cypress_query::wire`: self-versioned blobs (first
//! byte is [`ANALYSIS_WIRE_VERSION`]) shipped opaquely inside `queryd`
//! analysis frames, canonical encodings, and deterministic float-free JSON
//! so `cypress analyze --json` output diffs cleanly between local and
//! remote evaluation.

use crate::{AnalysisStats, AnalyzeOptions, AnalyzeReport};
use cypress_cst::tree::VertexKind;
use cypress_cst::Cst;
use cypress_query::Window;
use cypress_simmpi::{SimResult, WaitReport};
use cypress_trace::{Codec, DecodeError, DecodeResult, Decoder, Encoder};
use std::fmt::Write;

/// Version byte leading every [`AnalyzeOptions`] / [`AnalyzeReport`] blob.
pub const ANALYSIS_WIRE_VERSION: u8 = 1;

fn check_version(dec: &mut Decoder<'_>, what: &str) -> DecodeResult<()> {
    let v = dec.get_u8()?;
    if v != ANALYSIS_WIRE_VERSION {
        return Err(DecodeError(format!(
            "{what} wire version {v} unsupported (expected {ANALYSIS_WIRE_VERSION})"
        )));
    }
    Ok(())
}

impl Codec for AnalyzeOptions {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(ANALYSIS_WIRE_VERSION);
        match self.window {
            None => enc.put_u8(0),
            Some(w) => {
                enc.put_u8(1);
                enc.put_uvar(w.start_ns);
                enc.put_uvar(w.end_ns);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        check_version(dec, "analyze options")?;
        let window = match dec.get_u8()? {
            0 => None,
            1 => Some(Window {
                start_ns: dec.get_uvar()?,
                end_ns: dec.get_uvar()?,
            }),
            f => return Err(DecodeError(format!("unknown analyze window flag {f}"))),
        };
        Ok(AnalyzeOptions { window })
    }
}

impl Codec for AnalysisStats {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.symbolic_loops as u64);
        enc.put_uvar(self.unrolled_loops as u64);
        enc.put_u8(self.flattened as u8);
        enc.put_u8(self.windowed as u8);
        enc.put_uvar(self.fed_ops);
        enc.put_uvar(self.logical_ops);
        enc.put_uvar(self.extrapolated_trips);
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        Ok(AnalysisStats {
            symbolic_loops: dec.get_uvar()? as u32,
            unrolled_loops: dec.get_uvar()? as u32,
            flattened: dec.get_u8()? != 0,
            windowed: dec.get_u8()? != 0,
            fed_ops: dec.get_uvar()?,
            logical_ops: dec.get_uvar()?,
            extrapolated_trips: dec.get_uvar()?,
        })
    }
}

impl Codec for AnalyzeReport {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(ANALYSIS_WIRE_VERSION);
        enc.put_uvar(self.nprocs as u64);
        enc.put_uvar(self.measured_app_ns);
        self.predicted.encode(enc);
        self.waits.encode(enc);
        self.stats.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        check_version(dec, "analyze report")?;
        Ok(AnalyzeReport {
            nprocs: dec.get_uvar()? as u32,
            measured_app_ns: dec.get_uvar()?,
            predicted: SimResult::decode(dec)?,
            waits: WaitReport::decode(dec)?,
            stats: AnalysisStats::decode(dec)?,
        })
    }
}

/// Render the CST ancestor chain of `gid` the way hot spots do
/// (`Loop#3 > BrT#5`), empty for a top-level call.
fn render_path(cst: &Cst, gid: usize) -> String {
    if gid >= cst.len() {
        return String::new();
    }
    let mut chain = Vec::new();
    let mut cur = cst.vertex(gid).parent;
    while let Some(p) = cur {
        let v = cst.vertex(p);
        if !matches!(v.kind, VertexKind::Root) {
            chain.push(format!("{}#{}", v.kind.tag(), p));
        }
        cur = v.parent;
    }
    chain.reverse();
    chain.join(" > ")
}

impl AnalyzeReport {
    /// Deterministic JSON rendering with stable key order and no floats —
    /// the shared serializer behind `analyze predict --json`,
    /// `analyze latesender --json`, and the analysis bench output.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        write!(
            out,
            "{{\"nprocs\":{},\"measured_app_ns\":{},\"predicted\":{},\"waits\":{}",
            self.nprocs,
            self.measured_app_ns,
            self.predicted.render_json(),
            self.waits.render_json()
        )
        .unwrap();
        let s = &self.stats;
        write!(
            out,
            ",\"stats\":{{\"symbolic_loops\":{},\"unrolled_loops\":{},\"flattened\":{},\
             \"windowed\":{},\"fed_ops\":{},\"logical_ops\":{},\"extrapolated_trips\":{}}}}}",
            s.symbolic_loops,
            s.unrolled_loops,
            s.flattened,
            s.windowed,
            s.fed_ops,
            s.logical_ops,
            s.extrapolated_trips
        )
        .unwrap();
        out
    }

    /// Human-readable prediction summary.
    pub fn render_predict(&self) -> String {
        let mut out = String::new();
        writeln!(out, "Replay prediction ({} ranks):", self.nprocs).unwrap();
        writeln!(out, "  measured app time : {:>14} ns", self.measured_app_ns).unwrap();
        writeln!(out, "  predicted run     : {:>14} ns", self.predicted.total).unwrap();
        if self.measured_app_ns > 0 {
            writeln!(out, "  prediction error  : {:>13.2} %", self.error_pct()).unwrap();
        }
        writeln!(
            out,
            "  comm share        : {:>13.1} %",
            self.predicted.comm_permille() as f64 / 10.0
        )
        .unwrap();
        let s = &self.stats;
        writeln!(
            out,
            "  replay effort     : {} of {} ops fed ({} loop trips extrapolated, \
             {} symbolic / {} unrolled loops{}{})",
            s.fed_ops,
            s.logical_ops,
            s.extrapolated_trips,
            s.symbolic_loops,
            s.unrolled_loops,
            if s.flattened { ", flattened" } else { "" },
            if s.windowed { ", windowed" } else { "" },
        )
        .unwrap();
        out
    }

    /// Human-readable late-sender report: per-rank wait plus the top
    /// `limit` offending call sites, with CST call-path provenance when the
    /// tree is available.
    pub fn render_latesender(&self, limit: usize, cst: Option<&Cst>) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "Late-sender wait states ({} ranks, {} ns total):",
            self.nprocs,
            self.waits.total_wait_ns()
        )
        .unwrap();
        writeln!(out, "{:<6} {:>16}", "rank", "wait_ns").unwrap();
        for (r, w) in self.waits.per_rank.iter().enumerate() {
            writeln!(out, "{:<6} {:>16}", r, w).unwrap();
        }
        writeln!(
            out,
            "\nTop sites (top {} of {}):",
            limit.min(self.waits.sites.len()),
            self.waits.sites.len()
        )
        .unwrap();
        writeln!(out, "{:<6} {:>16} {:>10}  path", "gid", "wait_ns", "late").unwrap();
        for s in self.waits.sites.iter().take(limit) {
            let path = cst
                .map(|c| render_path(c, s.gid as usize))
                .unwrap_or_default();
            writeln!(
                out,
                "{:<6} {:>16} {:>10}  {}",
                s.gid, s.wait_ns, s.count, path
            )
            .unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_simmpi::WaitSite;

    fn sample() -> AnalyzeReport {
        AnalyzeReport {
            nprocs: 2,
            measured_app_ns: 1000,
            predicted: SimResult {
                finish: vec![900, 1100],
                total: 1100,
                comm_time: vec![100, 300],
                wildcard_sources: vec![vec![], vec![]],
            },
            waits: WaitReport {
                per_rank: vec![0, 250],
                sites: vec![WaitSite {
                    gid: 4,
                    wait_ns: 250,
                    count: 5,
                }],
            },
            stats: AnalysisStats {
                symbolic_loops: 1,
                fed_ops: 10,
                logical_ops: 100,
                extrapolated_trips: 90,
                ..AnalysisStats::default()
            },
        }
    }

    #[test]
    fn options_roundtrip_and_version_gate() {
        for opts in [
            AnalyzeOptions::default(),
            AnalyzeOptions {
                window: Some(Window {
                    start_ns: 5,
                    end_ns: 900,
                }),
            },
        ] {
            let bytes = opts.to_bytes();
            assert_eq!(bytes[0], ANALYSIS_WIRE_VERSION);
            assert_eq!(AnalyzeOptions::from_bytes(&bytes).unwrap(), opts);
        }
        let mut bad = AnalyzeOptions::default().to_bytes();
        bad[0] = 42;
        let err = AnalyzeOptions::from_bytes(&bad).unwrap_err();
        assert!(err.0.contains("wire version 42"), "{}", err.0);
    }

    #[test]
    fn report_roundtrip() {
        let r = sample();
        let bytes = r.to_bytes();
        assert_eq!(AnalyzeReport::from_bytes(&bytes).unwrap(), r);
    }

    #[test]
    fn json_render_is_stable() {
        let j = sample().render_json();
        assert!(j.starts_with("{\"nprocs\":2,\"measured_app_ns\":1000,\"predicted\":{"));
        assert!(j.contains("\"waits\":{\"total_wait_ns\":250"));
        assert!(j.contains("\"extrapolated_trips\":90"));
        assert!(j.ends_with("}}"));
    }

    #[test]
    fn text_renders_mention_key_figures() {
        let r = sample();
        let p = r.render_predict();
        assert!(p.contains("predicted run"));
        assert!(p.contains("1100"));
        let l = r.render_latesender(10, None);
        assert!(l.contains("Late-sender"));
        assert!(l.contains("250"));
    }
}
