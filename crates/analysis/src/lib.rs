//! Compressed-domain analysis engine: prediction and diagnosis on the CTT.
//!
//! The paper's endgame is trace-driven prediction (§V, Fig. 21): feed the
//! compressed trace to SIM-MPI and predict the run. Until now that meant
//! decompress-then-analyze — O(events) work that throws away the structure
//! the compressor preserved. This crate runs the analyses **on the CTT**:
//!
//! * **LogGP replay prediction** ([`analyze_ctts`]): the CTT's loops and
//!   branches are lowered into a compact [`cypress_simmpi::Schedule`]
//!   ([`lower_schedule`]) — repeated loop bodies are replayed once and
//!   steady-state trips applied arithmetically by the simulator — so
//!   prediction cost is O(|CTT| + distinct behavior), not O(events), while
//!   remaining *exactly* equal to the decompress-then-simulate oracle
//!   ([`analyze_by_decompression`]).
//! * **Late-sender / wait-state detection**: the simulator's replayed match
//!   graph charges every `sender_ready − recv_post` gap to the receive's
//!   call site ([`cypress_simmpi::WaitReport`]); [`AnalyzeReport`] renders
//!   per-rank wait time and the top offending call paths with CST
//!   provenance.
//! * **Time-window restriction** ([`cypress_query::Window`]): replay
//!   restricted to ops whose reconstructed start time falls in `[start,
//!   end)`. Windows force expansion (timestamps require the replay clock)
//!   and may sever communication pairs at the boundary — a severed
//!   rendezvous or collective reports as a simulation error rather than a
//!   silently wrong prediction.
//! * **Cross-job diffing** ([`DiffReport`]): two jobs' query results and
//!   predictions side by side with signed deltas — "did this comm pattern
//!   change between versions?".

mod diff;
mod lower;
mod predict;
mod wire;

pub use diff::{DiffReport, JobSummary};
pub use lower::{lower_schedule, replay_to_simop, LoweringStats};
pub use predict::{analyze_by_decompression, analyze_ctts, windowed_ops};
pub use wire::ANALYSIS_WIRE_VERSION;

use cypress_query::Window;
use cypress_simmpi::{SimError, SimResult, WaitReport};
use std::fmt;

/// Analysis knobs shipped to `queryd` as a self-versioned blob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// Restrict replay to ops starting within `[start_ns, end_ns)`.
    pub window: Option<Window>,
}

/// How the analysis spent its effort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Top-level loops lowered symbolically (trip counts arithmetic).
    pub symbolic_loops: u32,
    /// Top-level loops unrolled after a failed uniformity proof.
    pub unrolled_loops: u32,
    /// Recursion forced whole-job decompression.
    pub flattened: bool,
    /// A window forced O(events) replay-clock filtering.
    pub windowed: bool,
    /// Ops actually fed through the simulator.
    pub fed_ops: u64,
    /// Ops the job logically contains (fed + extrapolated).
    pub logical_ops: u64,
    /// Loop trips applied arithmetically instead of simulated.
    pub extrapolated_trips: u64,
}

/// The combined answer of one analysis pass: prediction + wait states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeReport {
    pub nprocs: u32,
    /// Measured job makespan: max per-rank traced application time (ns).
    pub measured_app_ns: u64,
    /// LogGP-predicted run (replay of the compressed trace).
    pub predicted: SimResult,
    /// Late-sender wait states detected on the replayed match graph.
    pub waits: WaitReport,
    pub stats: AnalysisStats,
}

impl AnalyzeReport {
    /// Signed prediction error vs the measured makespan, in percent.
    pub fn error_pct(&self) -> f64 {
        if self.measured_app_ns == 0 {
            return 0.0;
        }
        (self.predicted.total as f64 - self.measured_app_ns as f64) / self.measured_app_ns as f64
            * 100.0
    }
}

/// Analysis failures: structurally invalid input or simulation errors
/// (deadlock, mismatched communication — including pairs severed by a
/// window boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    Invalid(String),
    Sim(SimError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Invalid(e) => write!(f, "invalid analysis input: {e}"),
            AnalysisError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for AnalysisError {
    fn from(e: SimError) -> Self {
        AnalysisError::Sim(e)
    }
}
