//! Cross-job diffing: "did this comm pattern change between versions?"
//!
//! A [`DiffReport`] pairs two jobs' compressed-domain query results and
//! analysis reports — local containers or jobs fetched from `queryd`, in
//! any combination — and renders signed deltas of the quantities an
//! engineer compares across versions: predicted runtime, communication
//! volume and calls, matrix shape, per-op counts, and late-sender wait.

use crate::AnalyzeReport;
use cypress_query::QueryResult;
use std::fmt::Write;

/// One side of a diff: a job's query answer plus its analysis report.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Display label (file path or `job@host:port`).
    pub label: String,
    pub query: QueryResult,
    pub analyze: AnalyzeReport,
}

/// Two jobs side by side.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    pub a: JobSummary,
    pub b: JobSummary,
}

fn delta(a: u64, b: u64) -> i128 {
    b as i128 - a as i128
}

fn fmt_delta(d: i128) -> String {
    if d >= 0 {
        format!("+{d}")
    } else {
        format!("{d}")
    }
}

impl DiffReport {
    /// Number of matrix cells whose volume differs (covers shape changes:
    /// cells outside the smaller matrix count as changed when non-zero).
    pub fn matrix_cells_changed(&self) -> u64 {
        let (ma, mb) = (&self.a.query.matrix, &self.b.query.matrix);
        let n = ma.nprocs.max(mb.nprocs);
        let mut changed = 0;
        for s in 0..n {
            for d in 0..n {
                let va = if s < ma.nprocs && d < ma.nprocs {
                    ma.get(s, d)
                } else {
                    0
                };
                let vb = if s < mb.nprocs && d < mb.nprocs {
                    mb.get(s, d)
                } else {
                    0
                };
                if va != vb {
                    changed += 1;
                }
            }
        }
        changed
    }

    /// Per-op call-count deltas, in stable op order, ops present in either.
    pub fn op_call_deltas(&self) -> Vec<(&'static str, u64, u64)> {
        let a = self.a.query.op_counts();
        let b = self.b.query.op_counts();
        let mut out: Vec<(&'static str, u64, u64)> = Vec::new();
        for (op, ca) in &a {
            let cb = b
                .iter()
                .find(|(o, _)| o == op)
                .map(|(_, c)| *c)
                .unwrap_or(0);
            out.push((op.name(), *ca, cb));
        }
        for (op, cb) in &b {
            if !a.iter().any(|(o, _)| o == op) {
                out.push((op.name(), 0, *cb));
            }
        }
        out
    }

    /// Human-readable diff.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "Diff: {}  →  {}", self.a.label, self.b.label).unwrap();
        let rows: [(&str, u64, u64); 7] = [
            (
                "ranks",
                self.a.query.nprocs as u64,
                self.b.query.nprocs as u64,
            ),
            (
                "predicted ns",
                self.a.analyze.predicted.total,
                self.b.analyze.predicted.total,
            ),
            (
                "measured ns",
                self.a.analyze.measured_app_ns,
                self.b.analyze.measured_app_ns,
            ),
            (
                "p2p bytes",
                self.a.query.total_volume(),
                self.b.query.total_volume(),
            ),
            (
                "mpi calls",
                self.a.query.total_calls(),
                self.b.query.total_calls(),
            ),
            (
                "loop trips",
                self.a.query.loop_trips,
                self.b.query.loop_trips,
            ),
            (
                "wait ns",
                self.a.analyze.waits.total_wait_ns(),
                self.b.analyze.waits.total_wait_ns(),
            ),
        ];
        writeln!(
            out,
            "{:<14} {:>16} {:>16} {:>16}",
            "metric", "a", "b", "delta"
        )
        .unwrap();
        for (name, va, vb) in rows {
            writeln!(
                out,
                "{:<14} {:>16} {:>16} {:>16}",
                name,
                va,
                vb,
                fmt_delta(delta(va, vb))
            )
            .unwrap();
        }
        writeln!(out, "matrix cells changed: {}", self.matrix_cells_changed()).unwrap();
        let op_rows: Vec<_> = self
            .op_call_deltas()
            .into_iter()
            .filter(|(_, a, b)| a != b)
            .collect();
        if op_rows.is_empty() {
            writeln!(out, "per-op call counts identical").unwrap();
        } else {
            writeln!(out, "per-op call changes:").unwrap();
            for (name, ca, cb) in op_rows {
                writeln!(
                    out,
                    "  {:<14} {:>12} {:>12} {:>12}",
                    name,
                    ca,
                    cb,
                    fmt_delta(delta(ca, cb))
                )
                .unwrap();
            }
        }
        out
    }

    /// Deterministic JSON rendering (stable key order, integers only).
    pub fn render_json(&self) -> String {
        let side = |s: &JobSummary| {
            format!(
                "{{\"label\":\"{}\",\"nprocs\":{},\"predicted_ns\":{},\"measured_ns\":{},\
                 \"volume\":{},\"calls\":{},\"loop_trips\":{},\"wait_ns\":{}}}",
                cypress_query::json_escape(&s.label),
                s.query.nprocs,
                s.analyze.predicted.total,
                s.analyze.measured_app_ns,
                s.query.total_volume(),
                s.query.total_calls(),
                s.query.loop_trips,
                s.analyze.waits.total_wait_ns()
            )
        };
        let mut out = String::new();
        write!(out, "{{\"a\":{},\"b\":{}", side(&self.a), side(&self.b)).unwrap();
        write!(
            out,
            ",\"delta\":{{\"predicted_ns\":{},\"volume\":{},\"calls\":{},\"wait_ns\":{},\
             \"matrix_cells_changed\":{}}}",
            delta(
                self.a.analyze.predicted.total,
                self.b.analyze.predicted.total
            ),
            delta(self.a.query.total_volume(), self.b.query.total_volume()),
            delta(self.a.query.total_calls(), self.b.query.total_calls()),
            delta(
                self.a.analyze.waits.total_wait_ns(),
                self.b.analyze.waits.total_wait_ns()
            ),
            self.matrix_cells_changed()
        )
        .unwrap();
        out.push_str(",\"op_calls\":[");
        for (i, (name, ca, cb)) in self.op_call_deltas().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{{\"op\":\"{name}\",\"a\":{ca},\"b\":{cb}}}").unwrap();
        }
        out.push_str("]}");
        out
    }
}
