//! Analysis evaluation: schedule-driven prediction, windowed replay, and
//! the decompress-then-analyze oracle.

use crate::lower::{lower_schedule, replay_to_simop};
use crate::{AnalysisError, AnalysisStats, AnalyzeOptions, AnalyzeReport};
use cypress_core::{decompress, Ctt, CttSource};
use cypress_cst::Cst;
use cypress_obs::{Counter, Histogram};
use cypress_query::Window;
use cypress_simmpi::{simulate_schedule, simulate_traced, LogGp, SimOp};
use cypress_trace::event::MpiOp;
use std::sync::OnceLock;

/// Analysis instrumentation handles (scope `analysis`).
struct AnalysisMetrics {
    runs: Counter,
    symbolic_loops: Counter,
    extrapolated_trips: Counter,
    fed_ops: Counter,
    analyze_ns: Histogram,
}

fn obs() -> &'static AnalysisMetrics {
    static M: OnceLock<AnalysisMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("analysis");
        AnalysisMetrics {
            runs: s.counter("runs"),
            symbolic_loops: s.counter("symbolic_loops"),
            extrapolated_trips: s.counter("extrapolated_trips"),
            fed_ops: s.counter("fed_ops"),
            analyze_ns: s.histogram("analyze_ns", &cypress_obs::TIME_BOUNDS_NS),
        }
    })
}

fn validate<S: CttSource>(cst: &Cst, sources: &[S]) -> Result<u32, AnalysisError> {
    let first = sources
        .first()
        .ok_or_else(|| AnalysisError::Invalid("no CTTs to analyze".into()))?
        .nprocs();
    if sources.len() as u32 != first {
        return Err(AnalysisError::Invalid(format!(
            "analysis needs every rank: got {} CTTs for world size {first}",
            sources.len()
        )));
    }
    for (i, s) in sources.iter().enumerate() {
        if s.nprocs() != first {
            return Err(AnalysisError::Invalid(format!(
                "CTTs disagree on world size: {} vs {}",
                first,
                s.nprocs()
            )));
        }
        if s.rank() as usize != i {
            return Err(AnalysisError::Invalid(format!(
                "CTTs must be ordered by rank: position {i} holds rank {}",
                s.rank()
            )));
        }
        if s.vertex_count() != cst.len() {
            return Err(AnalysisError::Invalid(format!(
                "CTT has {} vertices but CST has {}",
                s.vertex_count(),
                cst.len()
            )));
        }
    }
    Ok(first)
}

/// Replay one rank restricted to a time window: ops are decompressed, the
/// replay clock reconstructed exactly as `replay_to_records` does, and only
/// ops starting within the window survive. Completion ops (`Wait*`) have
/// severed request handles pruned so a window never leaves a wait on a
/// request that was cut out of existence.
pub fn windowed_ops(cst: &Cst, ctt: &Ctt, w: Window) -> Vec<SimOp> {
    let mut t = 0u64;
    let mut out = Vec::new();
    // Posted-vs-consumed occurrence counts per GID, restricted to kept ops;
    // the simulator resolves request GIDs in FIFO posting order, so pruning
    // by running count matches its matching rule.
    let mut posted = std::collections::HashMap::<u32, u64>::new();
    let mut consumed = std::collections::HashMap::<u32, u64>::new();
    for o in decompress(cst, ctt) {
        t += o.mean_gap;
        let t_start = t;
        t += o.mean_dur;
        if !w.contains(t_start) {
            continue;
        }
        let mut op = replay_to_simop(o.gid, o.op, o.params, o.mean_gap);
        match op.op {
            MpiOp::Isend | MpiOp::Irecv => {
                *posted.entry(op.gid).or_insert(0) += 1;
            }
            MpiOp::Wait | MpiOp::Waitall | MpiOp::Waitany => {
                op.params.req_gids.retain(|g| {
                    let have = posted.get(g).copied().unwrap_or(0);
                    let used = consumed.entry(*g).or_insert(0);
                    if *used < have {
                        *used += 1;
                        true
                    } else {
                        false
                    }
                });
                if op.params.req_gids.is_empty() {
                    continue;
                }
            }
            _ => {}
        }
        out.push(op);
    }
    out
}

/// Analyze a job directly in the compressed domain: CTT-native LogGP replay
/// prediction plus late-sender wait states, exactly equal to the
/// decompress-then-analyze oracle ([`analyze_by_decompression`]).
///
/// `sources` must hold every rank of the job, ordered by rank.
pub fn analyze_ctts<S: CttSource>(
    cst: &Cst,
    sources: &[S],
    model: &LogGp,
    opts: &AnalyzeOptions,
) -> Result<AnalyzeReport, AnalysisError> {
    let _span = cypress_obs::enabled().then(|| obs().analyze_ns.start_span());
    let nprocs = validate(cst, sources)?;
    let measured_app_ns = sources.iter().map(|s| s.app_time()).max().unwrap_or(0);

    let (predicted, waits, stats) = if let Some(w) = opts.window {
        let ops: Vec<Vec<SimOp>> = sources
            .iter()
            .map(|s| windowed_ops(cst, &s.as_ctt(), w))
            .collect();
        let fed: u64 = ops.iter().map(|o| o.len() as u64).sum();
        let (predicted, waits) = simulate_traced(&ops, model)?;
        (
            predicted,
            waits,
            AnalysisStats {
                windowed: true,
                fed_ops: fed,
                logical_ops: fed,
                ..AnalysisStats::default()
            },
        )
    } else {
        let (sched, lstats) = lower_schedule(cst, sources);
        let (predicted, waits, sstats) = simulate_schedule(&sched, model)?;
        (
            predicted,
            waits,
            AnalysisStats {
                symbolic_loops: lstats.symbolic_loops,
                unrolled_loops: lstats.unrolled_loops,
                flattened: lstats.flattened || sstats.flattened,
                windowed: false,
                fed_ops: sstats.fed_ops,
                logical_ops: sstats.logical_ops,
                extrapolated_trips: sstats.extrapolated_trips,
            },
        )
    };
    if cypress_obs::enabled() {
        let m = obs();
        m.runs.inc();
        m.symbolic_loops.add(stats.symbolic_loops as u64);
        m.extrapolated_trips.add(stats.extrapolated_trips);
        m.fed_ops.add(stats.fed_ops);
    }
    Ok(AnalyzeReport {
        nprocs,
        measured_app_ns,
        predicted,
        waits,
        stats,
    })
}

/// The reference oracle: fully decompress every rank, convert to simulator
/// input (gap statistics as compute time), and run the flat simulation.
pub fn analyze_by_decompression(
    cst: &Cst,
    ctts: &[Ctt],
    model: &LogGp,
    opts: &AnalyzeOptions,
) -> Result<AnalyzeReport, AnalysisError> {
    let nprocs = validate(cst, ctts)?;
    let measured_app_ns = ctts.iter().map(|c| c.app_time).max().unwrap_or(0);
    let ops: Vec<Vec<SimOp>> = ctts
        .iter()
        .map(|c| match opts.window {
            Some(w) => windowed_ops(cst, c, w),
            None => decompress(cst, c)
                .into_iter()
                .map(|o| replay_to_simop(o.gid, o.op, o.params, o.mean_gap))
                .collect(),
        })
        .collect();
    let fed: u64 = ops.iter().map(|o| o.len() as u64).sum();
    let (predicted, waits) = simulate_traced(&ops, model)?;
    Ok(AnalyzeReport {
        nprocs,
        measured_app_ns,
        predicted,
        waits,
        stats: AnalysisStats {
            windowed: opts.window.is_some(),
            flattened: true,
            fed_ops: fed,
            logical_ops: fed,
            ..AnalysisStats::default()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_core::{compress_trace, CompressConfig};
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};

    fn compile(src: &str, nprocs: u32) -> (Cst, Vec<Ctt>) {
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        let ctts = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        (info.cst, ctts)
    }

    fn assert_native_equals_oracle(src: &str, nprocs: u32, opts: &AnalyzeOptions) -> AnalyzeReport {
        let (cst, ctts) = compile(src, nprocs);
        let model = LogGp::default();
        let native = analyze_ctts(&cst, &ctts, &model, opts).unwrap();
        let oracle = analyze_by_decompression(&cst, &ctts, &model, opts).unwrap();
        assert_eq!(native.predicted, oracle.predicted);
        assert_eq!(native.waits, oracle.waits);
        assert_eq!(native.measured_app_ns, oracle.measured_app_ns);
        assert_eq!(native.nprocs, oracle.nprocs);
        native
    }

    const STENCIL: &str = r#"fn main() {
        for it in 0..40 {
            compute(500);
            if rank() > 0 { send(rank() - 1, 2048, 0); }
            if rank() < size() - 1 { recv(rank() + 1, 2048, 0); }
            allreduce(16);
        }
        barrier();
    }"#;

    #[test]
    fn stencil_prediction_matches_oracle_exactly() {
        let r = assert_native_equals_oracle(STENCIL, 5, &AnalyzeOptions::default());
        assert!(r.stats.symbolic_loops > 0);
        assert!(r.predicted.total > 0);
    }

    #[test]
    fn late_senders_detected_and_match_oracle() {
        // Rank 0 computes long before sending: every recv on rank 1 waits.
        let r = assert_native_equals_oracle(
            r#"fn main() {
                for i in 0..25 {
                    if rank() == 0 { compute(50000); send(1, 256, 0); }
                    if rank() == 1 { recv(0, 256, 0); }
                }
            }"#,
            2,
            &AnalyzeOptions::default(),
        );
        assert!(r.waits.total_wait_ns() > 0, "expected late-sender waits");
        assert!(r.waits.per_rank[1] > 0);
        assert_eq!(r.waits.per_rank[0], 0);
        assert!(!r.waits.sites.is_empty());
    }

    #[test]
    fn recursion_falls_back_to_flatten_and_matches() {
        let r = assert_native_equals_oracle(
            r#"
            fn updown(n) {
                if n > 0 {
                    send((rank() + 1) % size(), 128, 0);
                    updown(n - 1);
                    recv((rank() + size() - 1) % size(), 128, 0);
                }
            }
            fn main() { updown(6); }
            "#,
            3,
            &AnalyzeOptions::default(),
        );
        assert!(r.stats.flattened);
    }

    #[test]
    fn full_span_window_equals_unwindowed() {
        let (cst, ctts) = compile(STENCIL, 4);
        let model = LogGp::default();
        let plain = analyze_ctts(&cst, &ctts, &model, &AnalyzeOptions::default()).unwrap();
        let windowed = analyze_ctts(
            &cst,
            &ctts,
            &model,
            &AnalyzeOptions {
                window: Some(Window {
                    start_ns: 0,
                    end_ns: u64::MAX,
                }),
            },
        )
        .unwrap();
        assert_eq!(windowed.predicted, plain.predicted);
        assert_eq!(windowed.waits, plain.waits);
        assert!(windowed.stats.windowed);
    }

    #[test]
    fn empty_window_predicts_nothing() {
        let (cst, ctts) = compile(STENCIL, 3);
        let r = analyze_ctts(
            &cst,
            &ctts,
            &LogGp::default(),
            &AnalyzeOptions {
                window: Some(Window {
                    start_ns: 0,
                    end_ns: 0,
                }),
            },
        )
        .unwrap();
        assert_eq!(r.predicted.total, 0);
        assert_eq!(r.waits.total_wait_ns(), 0);
        assert_eq!(r.stats.fed_ops, 0);
    }

    #[test]
    fn prefix_window_cuts_iterations_and_matches_oracle() {
        // Symmetric ring: replay clocks agree across ranks, so a boundary
        // between iterations cuts whole iterations cleanly.
        let src = r#"fn main() {
            for i in 0..20 {
                compute(1000);
                sendrecv((rank() + 1) % size(), 512, 0, (rank() + size() - 1) % size(), 512, 0);
            }
        }"#;
        let (cst, ctts) = compile(src, 4);
        let model = LogGp::default();
        let full = analyze_ctts(&cst, &ctts, &model, &AnalyzeOptions::default()).unwrap();
        let mid = full.measured_app_ns / 2;
        let opts = AnalyzeOptions {
            window: Some(Window {
                start_ns: 0,
                end_ns: mid,
            }),
        };
        let native = analyze_ctts(&cst, &ctts, &model, &opts).unwrap();
        let oracle = analyze_by_decompression(&cst, &ctts, &model, &opts).unwrap();
        assert_eq!(native.predicted, oracle.predicted);
        assert!(native.stats.fed_ops > 0);
        assert!(native.stats.fed_ops < full.stats.logical_ops);
        assert!(native.predicted.total < full.predicted.total);
    }

    #[test]
    fn windowed_wait_pruning_keeps_nonblocking_programs_runnable() {
        let src = r#"fn main() {
            for i in 0..12 {
                compute(2000);
                let a = isend((rank() + 1) % size(), 256, 1);
                let b = irecv((rank() + size() - 1) % size(), 256, 1);
                waitall(a, b);
            }
        }"#;
        let (cst, ctts) = compile(src, 3);
        let model = LogGp::default();
        let full = analyze_ctts(&cst, &ctts, &model, &AnalyzeOptions::default()).unwrap();
        let opts = AnalyzeOptions {
            window: Some(Window {
                start_ns: 0,
                end_ns: full.measured_app_ns / 2,
            }),
        };
        let native = analyze_ctts(&cst, &ctts, &model, &opts).unwrap();
        let oracle = analyze_by_decompression(&cst, &ctts, &model, &opts).unwrap();
        assert_eq!(native.predicted, oracle.predicted);
    }

    #[test]
    fn unordered_ranks_are_rejected() {
        let (cst, mut ctts) = compile(STENCIL, 3);
        ctts.swap(0, 2);
        let err =
            analyze_ctts(&cst, &ctts, &LogGp::default(), &AnalyzeOptions::default()).unwrap_err();
        assert!(matches!(err, AnalysisError::Invalid(_)));
    }

    #[test]
    fn missing_ranks_are_rejected() {
        let (cst, mut ctts) = compile(STENCIL, 3);
        ctts.pop();
        let err =
            analyze_ctts(&cst, &ctts, &LogGp::default(), &AnalyzeOptions::default()).unwrap_err();
        assert!(matches!(err, AnalysisError::Invalid(_)));
    }
}
