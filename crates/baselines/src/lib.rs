//! # cypress-baselines — dynamic-only trace compressors
//!
//! The comparison points of the paper's evaluation, reimplemented from
//! their published descriptions:
//!
//! * [`scalatrace`] — ScalaTrace (Noeth et al. \[14\]): greedy online
//!   RSD/PRSD folding intra-process, O(n²) LCS alignment inter-process.
//!   Lossless, but folding fails on varied parameters and every event pays
//!   a tail-window pattern search.
//! * [`scalatrace2`] — ScalaTrace-2 (Wu & Mueller \[18\]): *elastic* folding
//!   that merges same-shaped events with differing values (value sequences
//!   kept stride-compressed) and a loop-agnostic inter-node merge. Better
//!   ratios on irregular codes, partially lossy ordering.
//!
//! The Gzip baseline lives in `cypress-deflate`.

pub mod scalatrace;
pub mod scalatrace2;

pub use scalatrace::{Elem, ScalaCompressor, ScalaConfig, ScalaMerged, ScalaTrace};
pub use scalatrace2::{Elem2, ParamShape, Scala2Config, Scala2Merged, Scala2Trace};
