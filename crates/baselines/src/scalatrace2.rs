//! ScalaTrace-2-style *elastic* trace compression (Wu & Mueller, ICS'13
//! \[18\]).
//!
//! ScalaTrace-2 improves on ScalaTrace for applications with inconsistent
//! behaviour across time steps and ranks by relaxing event equality: events
//! with the same operation and parameter *shape* merge even when parameter
//! values differ, the values being kept as compressed per-field sequences
//! ("elastic" data elements), and the inter-node phase is loop-agnostic.
//! The price is partial information loss — exact interleaving across
//! different call sites is not recoverable (the paper: "the probabilistic
//! method used in ScalaTrace-2 only preserves partial communication
//! information") — and a still-expensive alignment-based inter-process
//! merge.
//!
//! This module implements that design point: windowed elastic folding
//! intra-process, LCS alignment with rank groups inter-process.

use cypress_core::intseq::IntSeq;
use cypress_core::merge::RankSet;
use cypress_trace::codec::{Codec, DecodeError, DecodeResult, Decoder, Encoder};
use cypress_trace::event::{MpiOp, MpiRecord, ANY_SOURCE, NONE};
use cypress_trace::raw::RawTrace;

/// Which parameter fields an event carries — the elastic merge key together
/// with the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamShape {
    pub has_dest: bool,
    pub has_src: bool,
    pub src_wild: bool,
    pub has_root: bool,
    pub n_reqs: u8,
}

impl ParamShape {
    fn of(rec: &MpiRecord) -> ParamShape {
        ParamShape {
            has_dest: rec.params.dest != NONE,
            has_src: rec.params.src != NONE && rec.params.src != ANY_SOURCE,
            src_wild: rec.params.src == ANY_SOURCE,
            has_root: rec.params.root != NONE,
            n_reqs: rec.params.req_gids.len().min(255) as u8,
        }
    }
}

/// An elastic element: one (op, shape) bucket with per-occurrence value
/// sequences, stride-compressed.
#[derive(Debug, Clone, PartialEq)]
pub struct Elem2 {
    pub op: MpiOp,
    pub shape: ParamShape,
    pub count: u64,
    /// dest/src deltas relative to the owning rank; roots absolute.
    pub dest: IntSeq,
    pub src: IntSeq,
    pub root: IntSeq,
    pub bytes: IntSeq,
    pub rbytes: IntSeq,
    pub tag: IntSeq,
    pub rtag: IntSeq,
}

impl Elem2 {
    fn new(op: MpiOp, shape: ParamShape) -> Self {
        Elem2 {
            op,
            shape,
            count: 0,
            dest: IntSeq::new(),
            src: IntSeq::new(),
            root: IntSeq::new(),
            bytes: IntSeq::new(),
            rbytes: IntSeq::new(),
            tag: IntSeq::new(),
            rtag: IntSeq::new(),
        }
    }

    fn absorb(&mut self, rank: i64, rec: &MpiRecord) {
        self.count += 1;
        if self.shape.has_dest {
            self.dest.push(rec.params.dest - rank);
        }
        if self.shape.has_src {
            self.src.push(rec.params.src - rank);
        }
        if self.shape.has_root {
            self.root.push(rec.params.root);
        }
        self.bytes.push(rec.params.count);
        self.rbytes.push(rec.params.rcount);
        self.tag.push(rec.params.tag);
        self.rtag.push(rec.params.rtag);
    }

    /// Value-level equality (used for inter-process rank grouping).
    pub fn same_values(&self, other: &Elem2) -> bool {
        self == other
    }

    fn key(&self) -> (MpiOp, ParamShape) {
        (self.op, self.shape)
    }
}

/// Elastic folding configuration.
#[derive(Debug, Clone)]
pub struct Scala2Config {
    /// How many trailing elements are scanned for an elastic match.
    pub window: usize,
}

impl Default for Scala2Config {
    fn default() -> Self {
        Scala2Config { window: 8 }
    }
}

/// One process's ScalaTrace-2 compressed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Scala2Trace {
    pub rank: u32,
    pub elems: Vec<Elem2>,
}

impl Scala2Trace {
    pub fn compress(trace: &RawTrace, cfg: &Scala2Config) -> Scala2Trace {
        let rank = trace.rank as i64;
        let mut elems: Vec<Elem2> = Vec::new();
        for rec in trace.mpi_records() {
            let shape = ParamShape::of(rec);
            let key = (rec.op, shape);
            let n = elems.len();
            let lo = n.saturating_sub(cfg.window);
            if let Some(e) = elems[lo..n].iter_mut().rev().find(|e| e.key() == key) {
                e.absorb(rank, rec);
            } else {
                let mut e = Elem2::new(rec.op, shape);
                e.absorb(rank, rec);
                elems.push(e);
            }
        }
        Scala2Trace {
            rank: trace.rank,
            elems,
        }
    }

    pub fn len(&self) -> usize {
        self.elems.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Total operations represented.
    pub fn op_count(&self) -> u64 {
        self.elems.iter().map(|e| e.count).sum()
    }
}

impl Codec for Elem2 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.op.code());
        enc.put_u8(u8::from(self.shape.has_dest));
        enc.put_u8(u8::from(self.shape.has_src));
        enc.put_u8(u8::from(self.shape.src_wild));
        enc.put_u8(u8::from(self.shape.has_root));
        enc.put_u8(self.shape.n_reqs);
        enc.put_uvar(self.count);
        self.dest.encode(enc);
        self.src.encode(enc);
        self.root.encode(enc);
        self.bytes.encode(enc);
        self.rbytes.encode(enc);
        self.tag.encode(enc);
        self.rtag.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let code = dec.get_u8()?;
        let op =
            MpiOp::from_code(code).ok_or_else(|| DecodeError(format!("bad op code {code}")))?;
        let shape = ParamShape {
            has_dest: dec.get_u8()? != 0,
            has_src: dec.get_u8()? != 0,
            src_wild: dec.get_u8()? != 0,
            has_root: dec.get_u8()? != 0,
            n_reqs: dec.get_u8()?,
        };
        Ok(Elem2 {
            op,
            shape,
            count: dec.get_uvar()?,
            dest: IntSeq::decode(dec)?,
            src: IntSeq::decode(dec)?,
            root: IntSeq::decode(dec)?,
            bytes: IntSeq::decode(dec)?,
            rbytes: IntSeq::decode(dec)?,
            tag: IntSeq::decode(dec)?,
            rtag: IntSeq::decode(dec)?,
        })
    }
}

impl Codec for Scala2Trace {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.rank as u64);
        enc.put_uvar(self.elems.len() as u64);
        for e in &self.elems {
            e.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let rank = dec.get_uvar()? as u32;
        let n = dec.get_uvar()? as usize;
        if n > 1 << 24 {
            return Err(DecodeError(format!("absurd element count {n}")));
        }
        let mut elems = Vec::with_capacity(n.min(1 << 14));
        for _ in 0..n {
            elems.push(Elem2::decode(dec)?);
        }
        Ok(Scala2Trace { rank, elems })
    }
}

/// Inter-process merged element: groups of ranks with identical elastic
/// data under one (op, shape) slot.
#[derive(Debug, Clone, PartialEq)]
pub struct Merged2Elem {
    pub groups: Vec<(RankSet, Elem2)>,
}

impl Merged2Elem {
    fn key(&self) -> (MpiOp, ParamShape) {
        let e = &self.groups[0].1;
        (e.op, e.shape)
    }
}

/// A whole-job ScalaTrace-2 merged trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scala2Merged {
    pub elems: Vec<Merged2Elem>,
}

impl Scala2Merged {
    pub fn from_trace(t: &Scala2Trace) -> Scala2Merged {
        Scala2Merged {
            elems: t
                .elems
                .iter()
                .map(|e| Merged2Elem {
                    groups: vec![(RankSet::singleton(t.rank), e.clone())],
                })
                .collect(),
        }
    }

    /// LCS alignment on (op, shape) keys — loop-agnostic: counts and values
    /// may differ across ranks, rank groups absorb the differences.
    pub fn merge(a: &Scala2Merged, b: &Scala2Merged) -> Scala2Merged {
        let n = a.elems.len();
        let m = b.elems.len();
        let mut dp = vec![0u32; (n + 1) * (m + 1)];
        let idx = |i: usize, j: usize| i * (m + 1) + j;
        for i in (0..n).rev() {
            for j in (0..m).rev() {
                dp[idx(i, j)] = if a.elems[i].key() == b.elems[j].key() {
                    dp[idx(i + 1, j + 1)] + 1
                } else {
                    dp[idx(i + 1, j)].max(dp[idx(i, j + 1)])
                };
            }
        }
        let mut out = Vec::with_capacity(n.max(m));
        let (mut i, mut j) = (0, 0);
        while i < n && j < m {
            if a.elems[i].key() == b.elems[j].key() {
                let mut groups = a.elems[i].groups.clone();
                for (ranks, data) in &b.elems[j].groups {
                    match groups.iter_mut().find(|(_, d)| d.same_values(data)) {
                        Some((rs, _)) => rs.extend(ranks),
                        None => groups.push((ranks.clone(), data.clone())),
                    }
                }
                out.push(Merged2Elem { groups });
                i += 1;
                j += 1;
            } else if dp[idx(i + 1, j)] >= dp[idx(i, j + 1)] {
                out.push(a.elems[i].clone());
                i += 1;
            } else {
                out.push(b.elems[j].clone());
                j += 1;
            }
        }
        out.extend(a.elems[i..].iter().cloned());
        out.extend(b.elems[j..].iter().cloned());
        Scala2Merged { elems: out }
    }

    pub fn merge_all(traces: &[Scala2Trace]) -> Scala2Merged {
        assert!(!traces.is_empty());
        let mut layer: Vec<Scala2Merged> = traces.iter().map(Self::from_trace).collect();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(Self::merge(&pair[0], &pair[1]));
                } else {
                    next.push(pair[0].clone());
                }
            }
            layer = next;
        }
        layer.pop().expect("non-empty input")
    }

    pub fn len(&self) -> usize {
        self.elems.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }
}

impl Codec for Scala2Merged {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.elems.len() as u64);
        for e in &self.elems {
            enc.put_uvar(e.groups.len() as u64);
            for (rs, d) in &e.groups {
                rs.encode(enc);
                d.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let n = dec.get_uvar()? as usize;
        if n > 1 << 24 {
            return Err(DecodeError(format!("absurd element count {n}")));
        }
        let mut elems = Vec::with_capacity(n.min(1 << 14));
        for _ in 0..n {
            let g = dec.get_uvar()? as usize;
            if g > 1 << 20 {
                return Err(DecodeError(format!("absurd group count {g}")));
            }
            let mut groups = Vec::with_capacity(g.min(1 << 10));
            for _ in 0..g {
                let rs = RankSet::decode(dec)?;
                let d = Elem2::decode(dec)?;
                groups.push((rs, d));
            }
            elems.push(Merged2Elem { groups });
        }
        Ok(Scala2Merged { elems })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_trace::event::MpiParams;

    fn rec(op: MpiOp, params: MpiParams) -> MpiRecord {
        MpiRecord {
            gid: 0,
            op,
            params,
            t_start: 0,
            dur: 1,
        }
    }

    fn trace_of(rank: u32, recs: Vec<MpiRecord>) -> RawTrace {
        RawTrace {
            rank,
            nprocs: 8,
            events: recs
                .into_iter()
                .map(cypress_trace::event::Event::Mpi)
                .collect(),
            app_time: 0,
        }
    }

    #[test]
    fn varied_sizes_fold_elastically() {
        // The pattern that defeats ScalaTrace: size changes every iteration.
        let recs: Vec<MpiRecord> = (0..64i64)
            .map(|i| rec(MpiOp::Send, MpiParams::send(1, 8 + i, 0)))
            .collect();
        let t = Scala2Trace::compress(&trace_of(0, recs), &Scala2Config::default());
        assert_eq!(t.len(), 1, "elastic folding absorbs varied sizes");
        assert_eq!(t.op_count(), 64);
        // The size sequence is an AP: one stride segment.
        assert_eq!(t.elems[0].bytes.seg_count(), 1);
    }

    #[test]
    fn different_ops_stay_separate() {
        let mut recs = Vec::new();
        for _ in 0..10 {
            recs.push(rec(MpiOp::Send, MpiParams::send(1, 8, 0)));
            recs.push(rec(MpiOp::Recv, MpiParams::recv(1, 8, 0)));
        }
        let t = Scala2Trace::compress(&trace_of(0, recs), &Scala2Config::default());
        assert_eq!(t.len(), 2);
        assert_eq!(t.op_count(), 20);
    }

    #[test]
    fn interleaving_is_lossy_but_counts_preserved() {
        // A B A B with the same op folds into one element: the order across
        // occurrences is gone (the documented ScalaTrace-2 tradeoff), but
        // counts and value multisets survive.
        let mut recs = Vec::new();
        for _ in 0..8 {
            recs.push(rec(MpiOp::Bcast, MpiParams::rooted(0, 64)));
            recs.push(rec(MpiOp::Bcast, MpiParams::rooted(0, 128)));
        }
        let t = Scala2Trace::compress(&trace_of(0, recs), &Scala2Config::default());
        assert_eq!(t.len(), 1);
        assert_eq!(t.op_count(), 16);
        let sizes = t.elems[0].bytes.to_vec();
        assert_eq!(sizes.iter().filter(|&&s| s == 64).count(), 8);
        assert_eq!(sizes.iter().filter(|&&s| s == 128).count(), 8);
    }

    #[test]
    fn codec_round_trip() {
        let recs: Vec<MpiRecord> = (0..20i64)
            .map(|i| rec(MpiOp::Send, MpiParams::send(1, 8 * i, i % 3)))
            .collect();
        let t = Scala2Trace::compress(&trace_of(2, recs), &Scala2Config::default());
        let back = Scala2Trace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn identical_ranks_merge_to_single_group() {
        let make = |rank: u32| {
            let recs: Vec<MpiRecord> = (0..16)
                .map(|_| rec(MpiOp::Allreduce, MpiParams::collective(64)))
                .collect();
            Scala2Trace::compress(&trace_of(rank, recs), &Scala2Config::default())
        };
        let traces: Vec<Scala2Trace> = (0..8).map(make).collect();
        let merged = Scala2Merged::merge_all(&traces);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.elems[0].groups.len(), 1);
        assert_eq!(merged.elems[0].groups[0].0.len(), 8);
    }

    #[test]
    fn rank_dependent_values_split_groups_but_share_slots() {
        // Every rank sends a different byte count: one slot, many groups —
        // still smaller than unmerged traces.
        let make = |rank: u32| {
            let recs = vec![rec(
                MpiOp::Send,
                MpiParams::send(1 + rank as i64 % 7, 1000 + rank as i64, 0),
            )];
            Scala2Trace::compress(&trace_of(rank, recs), &Scala2Config::default())
        };
        let traces: Vec<Scala2Trace> = (0..6).map(make).collect();
        let merged = Scala2Merged::merge_all(&traces);
        assert_eq!(merged.len(), 1);
        assert!(merged.elems[0].groups.len() > 1);
        let total: u64 = merged.elems[0].groups.iter().map(|(rs, _)| rs.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn merged_codec_round_trip() {
        let make = |rank: u32| {
            let recs: Vec<MpiRecord> = (0..4)
                .map(|i| rec(MpiOp::Bcast, MpiParams::rooted(0, 64 << i)))
                .collect();
            Scala2Trace::compress(&trace_of(rank, recs), &Scala2Config::default())
        };
        let traces: Vec<Scala2Trace> = (0..4).map(make).collect();
        let merged = Scala2Merged::merge_all(&traces);
        let back = Scala2Merged::from_bytes(&merged.to_bytes()).unwrap();
        assert_eq!(back, merged);
    }
}
