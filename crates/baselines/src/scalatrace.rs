//! ScalaTrace-style dynamic trace compression (Noeth et al., IPDPS'07 \[14\]).
//!
//! The state-of-the-art *dynamic-only* baseline the paper compares against.
//! Intra-process: a greedy online algorithm maintains a compressed element
//! list and, for each incoming event, searches the tail for a repeating
//! sequence to fold into an RSD (regular section descriptor); nested folds
//! produce power-RSDs. This is a bottom-up pattern search: unlike CYPRESS it
//! has no structural information, so every event pays a tail-window scan —
//! the intra-process overhead gap of Fig. 16.
//!
//! Inter-process: per-process element lists are merged pairwise by sequence
//! alignment (LCS dynamic programming) — the O(n²) per-pair cost of §IV-B
//! that dominates Fig. 18.
//!
//! Like the original, process ranks are encoded relative to the owner
//! (CYPRESS adopts that method *from* ScalaTrace), so SPMD-symmetric events
//! align across ranks.

use cypress_core::ctt::EncParams;
use cypress_core::merge::RankSet;
use cypress_trace::codec::{Codec, DecodeError, DecodeResult, Decoder, Encoder};
#[cfg(test)]
use cypress_trace::event::MpiOp;
use cypress_trace::event::MpiRecord;
use cypress_trace::raw::RawTrace;

/// One event key: operation + relative-encoded parameters (time excluded).
pub type EventKey = EncParams;

/// A compressed element: a run of identical events, or a repeating sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Elem {
    /// `count` consecutive occurrences of the same event.
    Ev { key: EventKey, count: u64 },
    /// A repeating sequence descriptor: `body` repeated `count` times.
    Rsd { body: Vec<Elem>, count: u64 },
}

impl Elem {
    /// Number of raw events this element expands to.
    pub fn expanded_len(&self) -> u64 {
        match self {
            Elem::Ev { count, .. } => *count,
            Elem::Rsd { body, count } => body.iter().map(|e| e.expanded_len()).sum::<u64>() * count,
        }
    }

    fn approx_bytes(&self) -> usize {
        match self {
            Elem::Ev { key, .. } => 48 + key.req_gids.len() * 4,
            Elem::Rsd { body, .. } => 16 + body.iter().map(|e| e.approx_bytes()).sum::<usize>(),
        }
    }
}

/// Configuration of the greedy folding search.
#[derive(Debug, Clone)]
pub struct ScalaConfig {
    /// Maximum tail length (in elements) considered when searching for a
    /// repeat — ScalaTrace's match window.
    pub max_window: usize,
}

impl Default for ScalaConfig {
    fn default() -> Self {
        ScalaConfig { max_window: 32 }
    }
}

/// Online intra-process compressor.
pub struct ScalaCompressor {
    cfg: ScalaConfig,
    rank: i64,
    elems: Vec<Elem>,
    /// Total events consumed (for accounting).
    pub events_in: u64,
}

impl ScalaCompressor {
    pub fn new(rank: u32, cfg: ScalaConfig) -> Self {
        ScalaCompressor {
            cfg,
            rank: rank as i64,
            elems: Vec::new(),
            events_in: 0,
        }
    }

    /// Feed one MPI record.
    pub fn push(&mut self, rec: &MpiRecord) {
        self.events_in += 1;
        let key = EncParams::encode(self.rank, rec.op, &rec.params);
        // 1. Run-length with the immediately preceding event.
        if let Some(Elem::Ev { key: k, count }) = self.elems.last_mut() {
            if *k == key {
                *count += 1;
                self.try_fold();
                return;
            }
        }
        // 2. Extending a trailing RSD whose body restarts with this event is
        //    handled by the generic fold after pushing.
        self.elems.push(Elem::Ev { key, count: 1 });
        self.try_fold();
    }

    /// Greedy tail folding: if the list ends with two identical runs of
    /// length k (k ≤ window), fold them into an RSD; if it ends with
    /// `Rsd{X, c}` followed by X itself, increment c.
    fn try_fold(&mut self) {
        loop {
            let n = self.elems.len();
            let mut folded = false;
            // Try RSD increment: Rsd{X,c} ++ X.
            'k: for k in 1..=self.cfg.max_window.min(n.saturating_sub(1)) {
                if n < k + 1 {
                    break;
                }
                let tail = &self.elems[n - k..];
                if let Elem::Rsd { body, .. } = &self.elems[n - k - 1] {
                    if body.len() == k && body.as_slice() == tail {
                        self.elems.truncate(n - k);
                        let Some(Elem::Rsd { count, .. }) = self.elems.last_mut() else {
                            unreachable!("checked above");
                        };
                        *count += 1;
                        folded = true;
                        break 'k;
                    }
                }
            }
            if !folded {
                // Try fresh fold: X ++ X.
                'k2: for k in 1..=self.cfg.max_window.min(n / 2) {
                    let (a, b) = (&self.elems[n - 2 * k..n - k], &self.elems[n - k..]);
                    if a == b {
                        let body: Vec<Elem> = self.elems[n - k..].to_vec();
                        self.elems.truncate(n - 2 * k);
                        self.elems.push(Elem::Rsd { body, count: 2 });
                        folded = true;
                        break 'k2;
                    }
                }
            }
            if !folded {
                return;
            }
            // A fold may enable another fold at the new tail; loop.
        }
    }

    pub fn finish(self) -> ScalaTrace {
        ScalaTrace {
            rank: self.rank as u32,
            elems: self.elems,
        }
    }

    /// Live memory estimate.
    pub fn approx_bytes(&self) -> usize {
        self.elems.iter().map(|e| e.approx_bytes()).sum::<usize>() + 24
    }
}

/// One process's ScalaTrace-compressed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalaTrace {
    pub rank: u32,
    pub elems: Vec<Elem>,
}

impl ScalaTrace {
    /// Compress a raw trace (MPI events only — a dynamic tool sees no
    /// structure markers).
    pub fn compress(trace: &RawTrace, cfg: &ScalaConfig) -> ScalaTrace {
        let mut c = ScalaCompressor::new(trace.rank, cfg.clone());
        for r in trace.mpi_records() {
            c.push(r);
        }
        c.finish()
    }

    /// Number of top-level compressed elements (the paper's `n`).
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Expand back to the full event-key sequence (losslessness check).
    pub fn expand(&self) -> Vec<EventKey> {
        fn rec(elems: &[Elem], out: &mut Vec<EventKey>) {
            for e in elems {
                match e {
                    Elem::Ev { key, count } => {
                        for _ in 0..*count {
                            out.push(key.clone());
                        }
                    }
                    Elem::Rsd { body, count } => {
                        for _ in 0..*count {
                            rec(body, out);
                        }
                    }
                }
            }
        }
        let mut out = Vec::new();
        rec(&self.elems, &mut out);
        out
    }
}

const EL_EV: u8 = 0;
const EL_RSD: u8 = 1;

impl Codec for Elem {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Elem::Ev { key, count } => {
                enc.put_u8(EL_EV);
                key.encode(enc);
                enc.put_uvar(*count);
            }
            Elem::Rsd { body, count } => {
                enc.put_u8(EL_RSD);
                enc.put_uvar(body.len() as u64);
                for e in body {
                    e.encode(enc);
                }
                enc.put_uvar(*count);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        match dec.get_u8()? {
            EL_EV => {
                let key = <EncParams as Codec>::decode(dec)?;
                let count = dec.get_uvar()?;
                Ok(Elem::Ev { key, count })
            }
            EL_RSD => {
                let n = dec.get_uvar()? as usize;
                if n > 1 << 22 {
                    return Err(DecodeError(format!("absurd RSD body length {n}")));
                }
                let mut body = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    body.push(Elem::decode(dec)?);
                }
                let count = dec.get_uvar()?;
                Ok(Elem::Rsd { body, count })
            }
            t => Err(DecodeError(format!("bad Elem tag {t}"))),
        }
    }
}

impl Codec for ScalaTrace {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.rank as u64);
        enc.put_uvar(self.elems.len() as u64);
        for e in &self.elems {
            e.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let rank = dec.get_uvar()? as u32;
        let n = dec.get_uvar()? as usize;
        if n > 1 << 24 {
            return Err(DecodeError(format!("absurd element count {n}")));
        }
        let mut elems = Vec::with_capacity(n.min(1 << 14));
        for _ in 0..n {
            elems.push(Elem::decode(dec)?);
        }
        Ok(ScalaTrace { rank, elems })
    }
}

/// One element of a merged (inter-process) trace, tagged with the ranks that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedElem {
    pub elem: Elem,
    pub ranks: RankSet,
}

/// A whole-job ScalaTrace-merged trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScalaMerged {
    pub elems: Vec<MergedElem>,
}

impl ScalaMerged {
    pub fn from_trace(t: &ScalaTrace) -> ScalaMerged {
        ScalaMerged {
            elems: t
                .elems
                .iter()
                .map(|e| MergedElem {
                    elem: e.clone(),
                    ranks: RankSet::singleton(t.rank),
                })
                .collect(),
        }
    }

    /// Merge two per-rank(-group) sequences by LCS alignment over element
    /// equality — the O(n·m) dynamic program that makes dynamic-only
    /// inter-process compression expensive.
    pub fn merge(a: &ScalaMerged, b: &ScalaMerged) -> ScalaMerged {
        let n = a.elems.len();
        let m = b.elems.len();
        // LCS table (lengths); O(n·m) time and space.
        let mut dp = vec![0u32; (n + 1) * (m + 1)];
        let idx = |i: usize, j: usize| i * (m + 1) + j;
        for i in (0..n).rev() {
            for j in (0..m).rev() {
                dp[idx(i, j)] = if a.elems[i].elem == b.elems[j].elem {
                    dp[idx(i + 1, j + 1)] + 1
                } else {
                    dp[idx(i + 1, j)].max(dp[idx(i, j + 1)])
                };
            }
        }
        let mut out = Vec::with_capacity(n.max(m));
        let (mut i, mut j) = (0, 0);
        while i < n && j < m {
            if a.elems[i].elem == b.elems[j].elem {
                let mut ranks = a.elems[i].ranks.clone();
                ranks.extend(&b.elems[j].ranks);
                out.push(MergedElem {
                    elem: a.elems[i].elem.clone(),
                    ranks,
                });
                i += 1;
                j += 1;
            } else if dp[idx(i + 1, j)] >= dp[idx(i, j + 1)] {
                out.push(a.elems[i].clone());
                i += 1;
            } else {
                out.push(b.elems[j].clone());
                j += 1;
            }
        }
        out.extend(a.elems[i..].iter().cloned());
        out.extend(b.elems[j..].iter().cloned());
        ScalaMerged { elems: out }
    }

    /// Merge all per-process traces (binary reduction; each pair is O(n²)).
    pub fn merge_all(traces: &[ScalaTrace]) -> ScalaMerged {
        assert!(!traces.is_empty());
        let mut layer: Vec<ScalaMerged> = traces.iter().map(Self::from_trace).collect();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut it = layer.chunks(2);
            for pair in &mut it {
                if pair.len() == 2 {
                    next.push(Self::merge(&pair[0], &pair[1]));
                } else {
                    next.push(pair[0].clone());
                }
            }
            layer = next;
        }
        layer.pop().expect("non-empty input")
    }

    pub fn len(&self) -> usize {
        self.elems.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }
}

impl Codec for ScalaMerged {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.elems.len() as u64);
        for e in &self.elems {
            e.elem.encode(enc);
            e.ranks.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let n = dec.get_uvar()? as usize;
        if n > 1 << 24 {
            return Err(DecodeError(format!("absurd element count {n}")));
        }
        let mut elems = Vec::with_capacity(n.min(1 << 14));
        for _ in 0..n {
            let elem = Elem::decode(dec)?;
            let ranks = RankSet::decode(dec)?;
            elems.push(MergedElem { elem, ranks });
        }
        Ok(ScalaMerged { elems })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_trace::event::MpiParams;

    fn rec(op: MpiOp, params: MpiParams) -> MpiRecord {
        MpiRecord {
            gid: 0,
            op,
            params,
            t_start: 0,
            dur: 1,
        }
    }

    fn compress_seq(rank: u32, recs: &[MpiRecord]) -> ScalaTrace {
        let mut c = ScalaCompressor::new(rank, ScalaConfig::default());
        for r in recs {
            c.push(r);
        }
        c.finish()
    }

    #[test]
    fn run_length_folds_identical_events() {
        let recs: Vec<MpiRecord> = (0..100)
            .map(|_| rec(MpiOp::Barrier, MpiParams::collective(0)))
            .collect();
        let t = compress_seq(0, &recs);
        assert_eq!(t.len(), 1);
        assert_eq!(t.expand().len(), 100);
    }

    #[test]
    fn alternating_pattern_folds_to_rsd() {
        let mut recs = Vec::new();
        for _ in 0..50 {
            recs.push(rec(MpiOp::Send, MpiParams::send(1, 8, 0)));
            recs.push(rec(MpiOp::Recv, MpiParams::recv(1, 8, 0)));
        }
        let t = compress_seq(0, &recs);
        assert_eq!(t.len(), 1, "elems: {:?}", t.elems.len());
        assert!(matches!(&t.elems[0], Elem::Rsd { count: 50, .. }));
        assert_eq!(t.expand().len(), 100);
    }

    #[test]
    fn nested_pattern_folds_to_prsd() {
        // (A A A B) x 20 — inner run inside an outer repeat.
        let mut recs = Vec::new();
        for _ in 0..20 {
            for _ in 0..3 {
                recs.push(rec(MpiOp::Bcast, MpiParams::rooted(0, 64)));
            }
            recs.push(rec(MpiOp::Reduce, MpiParams::rooted(0, 64)));
        }
        let t = compress_seq(0, &recs);
        assert!(t.len() <= 2, "got {} elems", t.len());
        assert_eq!(t.expand().len(), 80);
    }

    #[test]
    fn expansion_is_lossless() {
        let mut recs = Vec::new();
        for i in 0..30i64 {
            recs.push(rec(MpiOp::Send, MpiParams::send(1, 8 * (i % 3), 0)));
            if i % 4 == 0 {
                recs.push(rec(MpiOp::Barrier, MpiParams::collective(0)));
            }
        }
        let t = compress_seq(0, &recs);
        let expanded = t.expand();
        assert_eq!(expanded.len(), recs.len());
        for (e, r) in expanded.iter().zip(&recs) {
            assert_eq!(*e, EncParams::encode(0, r.op, &r.params));
        }
    }

    #[test]
    fn varied_sizes_defeat_folding() {
        // Message size changes every iteration: no folding possible.
        let recs: Vec<MpiRecord> = (0..64i64)
            .map(|i| rec(MpiOp::Send, MpiParams::send(1, 8 + i, 0)))
            .collect();
        let t = compress_seq(0, &recs);
        assert_eq!(
            t.len(),
            64,
            "dynamic-only folding cannot compress varied params"
        );
    }

    #[test]
    fn codec_round_trip() {
        let mut recs = Vec::new();
        for _ in 0..10 {
            recs.push(rec(MpiOp::Send, MpiParams::send(1, 8, 0)));
            recs.push(rec(MpiOp::Recv, MpiParams::recv(1, 8, 0)));
        }
        let t = compress_seq(3, &recs);
        let back = ScalaTrace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn merge_identical_ranks_collapses() {
        let recs: Vec<MpiRecord> = (0..16)
            .map(|_| rec(MpiOp::Allreduce, MpiParams::collective(64)))
            .collect();
        let traces: Vec<ScalaTrace> = (0..8).map(|r| compress_seq(r, &recs)).collect();
        let merged = ScalaMerged::merge_all(&traces);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.elems[0].ranks.len(), 8);
    }

    #[test]
    fn merge_aligns_mostly_similar_sequences() {
        // Rank 0 has an extra event in the middle.
        let common: Vec<MpiRecord> = (0..5)
            .map(|i| rec(MpiOp::Bcast, MpiParams::rooted(0, 64 << i)))
            .collect();
        let mut with_extra = common.clone();
        with_extra.insert(2, rec(MpiOp::Barrier, MpiParams::collective(0)));
        let t0 = compress_seq(0, &with_extra);
        let t1 = compress_seq(1, &common);
        let merged =
            ScalaMerged::merge(&ScalaMerged::from_trace(&t0), &ScalaMerged::from_trace(&t1));
        // 5 shared elements + 1 rank-0-only barrier.
        assert_eq!(merged.len(), 6);
        let shared = merged.elems.iter().filter(|e| e.ranks.len() == 2).count();
        assert_eq!(shared, 5);
    }

    #[test]
    fn relative_encoding_aligns_stencil_sends() {
        let r0 = [rec(MpiOp::Send, MpiParams::send(1, 8, 0))];
        let r3 = [rec(MpiOp::Send, MpiParams::send(4, 8, 0))];
        let t0 = compress_seq(0, &r0);
        let t3 = compress_seq(3, &r3);
        let merged =
            ScalaMerged::merge(&ScalaMerged::from_trace(&t0), &ScalaMerged::from_trace(&t3));
        assert_eq!(merged.len(), 1);
    }
}
