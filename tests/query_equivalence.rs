//! Compressed-domain query equivalence over every bundled workload.
//!
//! The query engine's contract is *exact* equality with the
//! decompress-then-analyze reference — not approximate, not "close enough
//! for a heatmap". These tests pin that contract for the paper's workloads
//! (Jacobi, the eight NPB skeletons, LESLIE3D) across every evaluation
//! path: per-rank CTTs, the merged CTT, forced partial expansion, and a
//! container round trip through the `Pipeline` facade.

use cypress::core::{compress_trace, merge_all, CompressConfig};
use cypress::query::{
    query_by_decompression, query_ctts, query_merged, QueryOptions, QueryResult, Strategy,
};
use cypress::workloads::{by_name, quick_procs, Scale, NPB_NAMES};
use cypress::{read_container, Pipeline};

fn assert_same(name: &str, q: &QueryResult, r: &QueryResult) {
    assert_eq!(q.nprocs, r.nprocs, "{name}: nprocs");
    assert_eq!(q.matrix, r.matrix, "{name}: comm matrix diverged");
    assert_eq!(q.profile, r.profile, "{name}: profile diverged");
    assert_eq!(q.totals, r.totals, "{name}: rank totals diverged");
    assert_eq!(q.hotspots, r.hotspots, "{name}: hot spots diverged");
    assert_eq!(q.loop_trips, r.loop_trips, "{name}: loop trips diverged");
}

fn all_workloads() -> impl Iterator<Item = &'static str> {
    NPB_NAMES
        .iter()
        .chain(["jacobi", "leslie3d"].iter())
        .copied()
}

#[test]
fn symbolic_query_equals_reference_for_every_workload() {
    for name in all_workloads() {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let (_, info) = w.compile();
        let traces = w.trace().unwrap();
        let cfg = CompressConfig::default();
        let ctts: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &cfg))
            .collect();

        let q = query_ctts(&info.cst, &ctts, &QueryOptions::default()).unwrap();
        let r = query_by_decompression(&info.cst, &ctts).unwrap();
        assert_same(name, &q, &r);

        // Hot-spot attribution must account for every byte in the matrix.
        assert_eq!(
            q.hotspot_volume(),
            q.total_volume(),
            "{name}: hot-spot bytes do not sum to total volume"
        );
        // EP (embarrassingly parallel) and FT (FFT transpose via
        // collectives) do no point-to-point traffic, so their matrices are
        // legitimately empty; everything else must show volume.
        if !matches!(name, "ep" | "ft") {
            assert!(q.total_volume() > 0, "{name}: workload moved no bytes");
        }
    }
}

#[test]
fn merged_query_equals_extracted_rank_reference() {
    for name in all_workloads() {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let (_, info) = w.compile();
        let traces = w.trace().unwrap();
        let cfg = CompressConfig::default();
        let ctts: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &cfg))
            .collect();
        let merged = merge_all(&ctts);

        let q = query_merged(&info.cst, &merged, &QueryOptions::default()).unwrap();
        let extracted: Vec<_> = (0..merged.nprocs)
            .map(|rank| merged.extract_rank(rank, &info.cst))
            .collect();
        let r = query_by_decompression(&info.cst, &extracted).unwrap();
        assert_same(name, &q, &r);
    }
}

#[test]
fn forced_partial_expansion_equals_symbolic() {
    for name in ["jacobi", "cg", "lu", "leslie3d"] {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let (_, info) = w.compile();
        let traces = w.trace().unwrap();
        let cfg = CompressConfig::default();
        let ctts: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &cfg))
            .collect();

        let sym = QueryOptions {
            strategy: Strategy::Symbolic,
            ..QueryOptions::default()
        };
        let exp = QueryOptions {
            strategy: Strategy::PartialExpansion,
            ..QueryOptions::default()
        };
        let q = query_ctts(&info.cst, &ctts, &sym).unwrap();
        let r = query_ctts(&info.cst, &ctts, &exp).unwrap();
        assert_same(name, &q, &r);
    }
}

#[test]
fn container_round_trip_preserves_query_results() {
    let dir = std::env::temp_dir().join(format!("cypress_query_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    for name in ["jacobi", "mg", "leslie3d"] {
        let nprocs = quick_procs(name);
        let w = by_name(name, nprocs, Scale::Quick).unwrap();
        let mut job = Pipeline::new(&w.source).ranks(nprocs).run().unwrap();
        let direct = job.query().unwrap();

        // With per-rank sections present the loaded query must be
        // bit-identical to the in-memory one.
        let path = dir.join(format!("{name}_ranks.cytc"));
        job.write_container(&path, true).unwrap();
        let q = read_container(&path).unwrap().query().unwrap();
        assert_same(&format!("{name} per_rank"), &q, &direct);

        // A merged-only container evaluates on the merged CTT, whose
        // TimeStats are aggregated across each group's member ranks — the
        // profile's timing means may shift, but every count, byte, and
        // attribution must still match exactly.
        let path = dir.join(format!("{name}_merged.cytc"));
        job.write_container(&path, false).unwrap();
        let q = read_container(&path).unwrap().query().unwrap();
        let ctx = format!("{name} merged");
        assert_eq!(q.matrix, direct.matrix, "{ctx}: comm matrix diverged");
        assert_eq!(q.totals, direct.totals, "{ctx}: rank totals diverged");
        assert_eq!(q.hotspots, direct.hotspots, "{ctx}: hot spots diverged");
        assert_eq!(
            q.loop_trips, direct.loop_trips,
            "{ctx}: loop trips diverged"
        );
        for (op, s) in &direct.profile.by_op {
            let m = q
                .profile
                .by_op
                .get(op)
                .unwrap_or_else(|| panic!("{ctx}: {op:?} missing"));
            assert_eq!(m.calls, s.calls, "{ctx}: {op:?} call count diverged");
            assert_eq!(m.total_bytes, s.total_bytes, "{ctx}: {op:?} bytes diverged");
        }
        assert_eq!(
            q.profile.size_buckets, direct.profile.size_buckets,
            "{ctx}: size buckets"
        );
        assert_eq!(
            q.profile.rank_app_time, direct.profile.rank_app_time,
            "{ctx}: app times"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
