//! Integration of the tracing pipeline with the LogGP simulator: every
//! workload must replay deadlock-free, and prediction through compressed
//! traces must track the raw-trace simulation.

use cypress::core::{compress_trace, decompress, CompressConfig};
use cypress::simmpi::{from_raw_traces, simulate, LogGp, SimOp};
use cypress::workloads::{by_name, quick_procs, Scale, NPB_NAMES};

#[test]
fn every_workload_simulates_without_deadlock() {
    for name in NPB_NAMES.iter().chain(["jacobi", "leslie3d"].iter()) {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let traces = w.trace().unwrap();
        let r = simulate(&from_raw_traces(&traces), &LogGp::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(r.total > 0, "{name}: zero simulated time");
        assert!(
            r.finish.iter().all(|&f| f > 0),
            "{name}: some rank never ran"
        );
    }
}

#[test]
fn decompressed_traces_simulate_close_to_raw() {
    for name in ["jacobi", "bt", "lu", "leslie3d"] {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let (_, info) = w.compile();
        let traces = w.trace().unwrap();
        let model = LogGp::default();
        let measured = simulate(&from_raw_traces(&traces), &model).unwrap();
        let cfg = CompressConfig::default();
        let predicted_ops: Vec<Vec<SimOp>> = traces
            .iter()
            .map(|t| {
                let ctt = compress_trace(&info.cst, t, &cfg);
                decompress(&info.cst, &ctt)
                    .into_iter()
                    .map(|o| SimOp {
                        gid: o.gid,
                        op: o.op,
                        params: o.params,
                        pre_gap: o.mean_gap,
                    })
                    .collect()
            })
            .collect();
        let predicted = simulate(&predicted_ops, &model)
            .unwrap_or_else(|e| panic!("{name}: predicted replay failed: {e}"));
        let err =
            (predicted.total as f64 - measured.total as f64).abs() / measured.total.max(1) as f64;
        assert!(err < 0.2, "{name}: prediction error {err:.3}");
    }
}

#[test]
fn wildcard_resolution_is_deterministic() {
    let w = by_name("cg", 8, Scale::Quick).unwrap();
    let traces = w.trace().unwrap();
    let a = simulate(&from_raw_traces(&traces), &LogGp::default()).unwrap();
    let b = simulate(&from_raw_traces(&traces), &LogGp::default()).unwrap();
    assert_eq!(a.wildcard_sources, b.wildcard_sources);
    assert_eq!(a.finish, b.finish);
}

#[test]
fn network_parameters_shift_the_prediction_sensibly() {
    let w = by_name("leslie3d", 16, Scale::Quick).unwrap();
    let traces = w.trace().unwrap();
    let ops = from_raw_traces(&traces);
    let fast = simulate(&ops, &LogGp::default()).unwrap();
    let slow_net = LogGp {
        latency_ns: 50_000,
        gap_per_byte_x1000: 4_000,
        ..LogGp::default()
    };
    let slow = simulate(&ops, &slow_net).unwrap();
    assert!(
        slow.total > fast.total,
        "a 10x slower network must predict a slower run"
    );
    assert!(slow.comm_fraction() > fast.comm_fraction());
}

#[test]
fn simulated_time_dominates_compute_lower_bound() {
    // Total simulated time can never be below any rank's pure compute sum.
    for name in ["jacobi", "bt", "mg"] {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let traces = w.trace().unwrap();
        let ops = from_raw_traces(&traces);
        let r = simulate(&ops, &LogGp::default()).unwrap();
        for (rank, seq) in ops.iter().enumerate() {
            let compute: u64 = seq.iter().map(|o| o.pre_gap).sum();
            assert!(
                r.finish[rank] >= compute,
                "{name}: rank {rank} finished before its own compute"
            );
        }
    }
}

#[test]
fn adding_compute_increases_predicted_time() {
    use cypress::minilang::{check_program, parse};
    use cypress::runtime::{trace_program, InterpConfig};
    let make = |work: u64| {
        let src = format!("fn main() {{ for i in 0..10 {{ compute({work}); allreduce(64); }} }}");
        let p = parse(&src).unwrap();
        check_program(&p).unwrap();
        let info = cypress::cst::analyze_program(&p);
        let traces = trace_program(&p, &info, 4, &InterpConfig::default()).unwrap();
        simulate(&from_raw_traces(&traces), &LogGp::default())
            .unwrap()
            .total
    };
    assert!(make(100_000) > make(1_000));
}

#[test]
fn ring_pipelines_scale_sublinearly_with_rank_count() {
    // A non-blocking ring exchange has no serial dependency chain across
    // steps, so doubling ranks must not double the simulated time.
    use cypress::minilang::{check_program, parse};
    use cypress::runtime::{trace_program, InterpConfig};
    let sim = |nprocs: u32| {
        let src = r#"fn main() {
            for i in 0..10 {
                let a = isend((rank() + 1) % size(), 1024, 0);
                let b = irecv((rank() + size() - 1) % size(), 1024, 0);
                waitall(a, b);
                compute(20000);
            }
        }"#;
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = cypress::cst::analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        simulate(&from_raw_traces(&traces), &LogGp::default())
            .unwrap()
            .total
    };
    let t8 = sim(8);
    let t32 = sim(32);
    assert!(
        (t32 as f64) < (t8 as f64) * 1.5,
        "ring time should be ~flat in P: {t8} -> {t32}"
    );
}
