//! End-to-end sequence-preservation tests across the whole pipeline, for
//! every workload: trace → compress → (merge → extract →) decompress must
//! reproduce each rank's exact `(gid, op, params)` sequence.

use cypress::core::{compress_trace, decompress, merge_all, merge_all_parallel, CompressConfig};
use cypress::trace::event::{MpiOp, MpiParams};
use cypress::workloads::{by_name, quick_procs, Scale, NPB_NAMES};

type OpSeq = Vec<(u32, MpiOp, MpiParams)>;

fn strip_raw(t: &cypress::trace::RawTrace) -> OpSeq {
    t.mpi_records()
        .map(|r| (r.gid, r.op, r.params.clone()))
        .collect()
}

fn strip_replay(ops: &[cypress::core::ReplayOp]) -> OpSeq {
    ops.iter()
        .map(|o| (o.gid, o.op, o.params.clone()))
        .collect()
}

#[test]
fn every_workload_round_trips_exactly() {
    for name in NPB_NAMES.iter().chain(["jacobi", "leslie3d"].iter()) {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let (_, info) = w.compile();
        let traces = w.trace().unwrap();
        let cfg = CompressConfig::default();
        for t in &traces {
            let ctt = compress_trace(&info.cst, t, &cfg);
            let replay = decompress(&info.cst, &ctt);
            assert_eq!(
                strip_replay(&replay),
                strip_raw(t),
                "{name}: rank {} sequence not preserved",
                t.rank
            );
        }
    }
}

#[test]
fn merged_extraction_equals_per_rank_compression() {
    for name in ["jacobi", "bt", "mg", "leslie3d"] {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let (_, info) = w.compile();
        let traces = w.trace().unwrap();
        let cfg = CompressConfig::default();
        let ctts: Vec<_> = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &cfg))
            .collect();
        let merged = merge_all(&ctts);
        for t in &traces {
            let extracted = merged.extract_rank(t.rank, &info.cst);
            let replay = decompress(&info.cst, &extracted);
            assert_eq!(
                strip_replay(&replay),
                strip_raw(t),
                "{name}: merged extraction diverged for rank {}",
                t.rank
            );
        }
    }
}

#[test]
fn parallel_merge_structurally_equals_sequential() {
    let w = by_name("mg", 16, Scale::Quick).unwrap();
    let (_, info) = w.compile();
    let traces = w.trace().unwrap();
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    let seq = merge_all(&ctts);
    for threads in [2, 4, 7] {
        let par = merge_all_parallel(&ctts, threads);
        assert_eq!(seq.group_count(), par.group_count(), "threads={threads}");
        // Extraction must agree rank-for-rank.
        for rank in 0..16 {
            let a = decompress(&info.cst, &seq.extract_rank(rank, &info.cst));
            let b = decompress(&info.cst, &par.extract_rank(rank, &info.cst));
            assert_eq!(strip_replay(&a), strip_replay(&b));
        }
    }
}

#[test]
fn compressed_artifact_survives_serialization() {
    use cypress::trace::codec::Codec;
    let w = by_name("cg", 8, Scale::Quick).unwrap();
    let (_, info) = w.compile();
    let traces = w.trace().unwrap();
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    let merged = merge_all(&ctts);

    // Round-trip the merged trace and the CST text through their formats.
    let merged2 = cypress::core::MergedCtt::from_bytes(&merged.to_bytes()).unwrap();
    let cst2 = cypress::cst::Cst::from_text(&info.cst.to_text()).unwrap();
    assert_eq!(cst2, info.cst);
    for t in &traces {
        let replay = decompress(&cst2, &merged2.extract_rank(t.rank, &cst2));
        assert_eq!(strip_replay(&replay), strip_raw(t), "rank {}", t.rank);
    }
}

#[test]
fn gzip_layer_is_lossless_over_merged_trace() {
    use cypress::deflate::{gzip_compress, gzip_decompress, Level};
    use cypress::trace::codec::Codec;
    let w = by_name("ft", 8, Scale::Quick).unwrap();
    let (_, info) = w.compile();
    let traces = w.trace().unwrap();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
        .collect();
    let merged = merge_all(&ctts);
    let bytes = merged.to_bytes();
    let z = gzip_compress(&bytes, Level::Best);
    assert_eq!(gzip_decompress(&z).unwrap(), bytes.to_vec());
}

#[test]
fn histogram_time_mode_round_trips_sequences() {
    use cypress::core::TimeMode;
    let w = by_name("bt", 9, Scale::Quick).unwrap();
    let (_, info) = w.compile();
    let traces = w.trace().unwrap();
    let cfg = CompressConfig {
        time_mode: TimeMode::Histogram,
        ..CompressConfig::default()
    };
    for t in &traces {
        let ctt = compress_trace(&info.cst, t, &cfg);
        let replay = decompress(&info.cst, &ctt);
        assert_eq!(strip_replay(&replay), strip_raw(t), "rank {}", t.rank);
        // Histogram means are coarse but positive for real durations.
        assert!(replay.iter().all(|o| o.mean_dur > 0));
    }
}

#[test]
fn no_time_mode_shrinks_the_artifact() {
    use cypress::core::TimeMode;
    use cypress::trace::codec::Codec;
    let w = by_name("lu", 8, Scale::Quick).unwrap();
    let (_, info) = w.compile();
    let traces = w.trace().unwrap();
    let with_time = compress_trace(&info.cst, &traces[0], &CompressConfig::default());
    let without = compress_trace(
        &info.cst,
        &traces[0],
        &CompressConfig {
            time_mode: TimeMode::None,
            ..CompressConfig::default()
        },
    );
    assert!(without.encoded_size() < with_time.encoded_size());
    // Sequences still identical.
    let a = decompress(&info.cst, &with_time);
    let b = decompress(&info.cst, &without);
    assert_eq!(strip_replay(&a), strip_replay(&b));
}

#[test]
fn merge_is_associative_over_contiguous_partitions() {
    // DESIGN §5: merging per-rank CTTs must give the same result no matter
    // how the (rank-ordered) reduction tree is shaped. Exercise several
    // random-ish contiguous partitions of the rank range.
    let w = by_name("mg", 16, Scale::Quick).unwrap();
    let (_, info) = w.compile();
    let traces = w.trace().unwrap();
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    let reference = merge_all(&ctts);

    let partitions: [&[usize]; 4] = [&[1, 15], &[4, 4, 4, 4], &[7, 2, 7], &[2, 3, 5, 6]];
    for cuts in partitions {
        assert_eq!(cuts.iter().sum::<usize>(), 16);
        let mut parts = Vec::new();
        let mut start = 0;
        for &len in cuts {
            parts.push(merge_all(&ctts[start..start + len]));
            start += len;
        }
        let mut acc = parts.remove(0);
        for p in parts {
            acc.absorb(p);
        }
        assert_eq!(acc.group_count(), reference.group_count(), "cuts {cuts:?}");
        for rank in 0..16u32 {
            let a = decompress(&info.cst, &acc.extract_rank(rank, &info.cst));
            let b = decompress(&info.cst, &reference.extract_rank(rank, &info.cst));
            assert_eq!(
                strip_replay(&a),
                strip_replay(&b),
                "cuts {cuts:?} rank {rank}"
            );
        }
    }
}

#[test]
fn trace_parallel_is_deterministic_across_thread_counts() {
    let w = by_name("bt", 9, Scale::Quick).unwrap();
    let t1 = w.trace_parallel(1).unwrap();
    let t3 = w.trace_parallel(3).unwrap();
    let t16 = w.trace_parallel(16).unwrap();
    assert_eq!(t1, t3);
    assert_eq!(t1, t16);
}
