//! Cross-compressor consistency: every method must account for the same
//! operations, and the lossless ones must reproduce them exactly.

use cypress::baselines::{Scala2Config, Scala2Trace, ScalaConfig, ScalaTrace};
use cypress::core::{compress_trace, CompressConfig, EncParams};
use cypress::workloads::{by_name, quick_procs, Scale, NPB_NAMES};

#[test]
fn all_methods_account_for_every_operation() {
    for name in NPB_NAMES {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let (_, info) = w.compile();
        let traces = w.trace().unwrap();
        for t in &traces {
            let n = t.mpi_count() as u64;
            let cy = compress_trace(&info.cst, t, &CompressConfig::default());
            assert_eq!(
                cy.op_count(),
                n,
                "{name}: CYPRESS lost ops on rank {}",
                t.rank
            );
            let st = ScalaTrace::compress(t, &ScalaConfig::default());
            assert_eq!(
                st.expand().len() as u64,
                n,
                "{name}: ScalaTrace lost ops on rank {}",
                t.rank
            );
            let st2 = Scala2Trace::compress(t, &Scala2Config::default());
            assert_eq!(
                st2.op_count(),
                n,
                "{name}: ScalaTrace-2 lost ops on rank {}",
                t.rank
            );
        }
    }
}

#[test]
fn scalatrace_expansion_matches_encoded_events() {
    // ScalaTrace is the lossless baseline: its expansion equals the
    // relative-encoded event sequence exactly.
    for name in ["jacobi", "lu", "bt"] {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let traces = w.trace().unwrap();
        for t in &traces {
            let st = ScalaTrace::compress(t, &ScalaConfig::default());
            let expanded = st.expand();
            let want: Vec<EncParams> = t
                .mpi_records()
                .map(|r| EncParams::encode(t.rank as i64, r.op, &r.params))
                .collect();
            assert_eq!(expanded, want, "{name}: rank {}", t.rank);
        }
    }
}

#[test]
fn cypress_beats_dynamic_folding_on_loop_count_variation() {
    // The paper's core claim on MG-like codes: varying iteration counts are
    // absorbed by the CST's loop vertices but defeat bottom-up folding. At
    // growing trace lengths CYPRESS stays flat while ScalaTrace grows.
    use cypress::minilang::{check_program, parse};
    use cypress::runtime::{trace_program, InterpConfig};

    // The sweep count varies with period 37, longer than ScalaTrace's
    // fold-search window (32): the dynamic folder cannot see the repeat
    // (the long-range-repeat weakness Xu et al. [15] document), while the
    // loop vertex's count sequence is a couple of stride segments.
    let make = |cycles: u32| {
        format!(
            "fn main() {{
                for c in 0..{cycles} {{
                    for s in 0..2 + c % 37 {{
                        let a = isend((rank() + 1) % size(), 4096, 0);
                        let b = irecv((rank() + size() - 1) % size(), 4096, 0);
                        waitall(a, b);
                    }}
                    allreduce(8);
                }}
            }}"
        )
    };
    let sizes = |cycles: u32| -> (usize, usize) {
        let prog = parse(&make(cycles)).unwrap();
        check_program(&prog).unwrap();
        let info = cypress::cst::analyze_program(&prog);
        let t = &trace_program(&prog, &info, 2, &InterpConfig::default()).unwrap()[0];
        let cy = compress_trace(&info.cst, t, &CompressConfig::default());
        let st = ScalaTrace::compress(t, &ScalaConfig::default());
        (cy.record_count(), st.len())
    };
    let (cy_small, st_small) = sizes(10);
    let (cy_big, st_big) = sizes(100);
    assert_eq!(cy_small, cy_big, "CYPRESS record count must not grow");
    assert!(
        st_big >= st_small * 5,
        "ScalaTrace should grow with cycles ({st_small} -> {st_big})"
    );
    assert!(cy_big < st_big, "CYPRESS must win at scale");
}

#[test]
fn scalatrace2_elastic_beats_scalatrace_on_varied_params() {
    // SP-style per-iteration size variation: ScalaTrace can't fold,
    // ScalaTrace-2's elastic merge can (the paper's ScalaTrace-2 rationale).
    let w = by_name("sp", 9, Scale::Quick).unwrap();
    let traces = w.trace().unwrap();
    let t = &traces[4];
    let st = ScalaTrace::compress(t, &ScalaConfig::default());
    let st2 = Scala2Trace::compress(t, &Scala2Config::default());
    assert!(
        st2.len() * 4 < st.len(),
        "elastic folding should collapse SP ({} vs {})",
        st2.len(),
        st.len()
    );
}

#[test]
fn waitany_partial_completion_round_trips() {
    // §IV-A partial completion: waitany completes one request (its posting
    // GID recorded); the rest complete later. The sequence must survive
    // compression and simulate cleanly.
    use cypress::minilang::{check_program, parse};
    use cypress::runtime::{trace_program, InterpConfig};
    use cypress::simmpi::{from_raw_traces, simulate, LogGp};

    let src = r#"fn main() {
        for i in 0..20 {
            let a = isend((rank() + 1) % size(), 256, 0);
            let b = irecv((rank() + size() - 1) % size(), 256, 0);
            waitany(a, b);
            wait(b);
        }
    }"#;
    let prog = parse(src).unwrap();
    check_program(&prog).unwrap();
    let info = cypress::cst::analyze_program(&prog);
    let traces = trace_program(&prog, &info, 4, &InterpConfig::default()).unwrap();

    // waitany recorded with exactly one posting gid (the isend's).
    let t0 = &traces[0];
    let wany = t0
        .mpi_records()
        .find(|r| r.op == cypress::trace::event::MpiOp::Waitany)
        .expect("waitany traced");
    assert_eq!(wany.params.req_gids.len(), 1);

    // Exact sequence round trip.
    let ctt = compress_trace(&info.cst, t0, &CompressConfig::default());
    let replay = cypress::core::decompress(&info.cst, &ctt);
    assert_eq!(replay.len(), t0.mpi_count());
    assert_eq!(
        ctt.record_count(),
        4,
        "20 identical iterations fold to one record per leaf"
    );

    // And the trace replays in the simulator without deadlock.
    simulate(&from_raw_traces(&traces), &LogGp::default()).unwrap();
}
