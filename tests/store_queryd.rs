//! End-to-end identity across the three query paths: for bundled
//! workloads, the eager local load ([`cypress::LoadedJob`]), the zero-copy
//! store ([`cypress::store::JobStore`]), and the resident daemon must
//! produce byte-identical answers — same canonical wire bytes, same JSON.

use cypress::store::{query_remote, JobStore, StoreConfig};
use cypress::trace::Codec;
use cypress::workloads::{by_name, quick_procs, Scale};
use cypress::{Pipeline, QueryOptions};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "cypress-store-queryd-{name}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn all_three_query_paths_agree_on_bundled_workloads() {
    let tmp = TempDir::new("identity");
    let names = ["jacobi", "cg", "dt", "mg"];
    for name in names {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let mut job = Pipeline::new(w.source)
            .ranks(w.nprocs)
            .run()
            .unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
        job.merge();
        job.write_container_with(tmp.0.join(format!("{name}.cytc")), true, None)
            .unwrap();
    }

    let store = Arc::new(JobStore::new(&tmp.0, StoreConfig::default()).unwrap());
    let addr = cypress::net::Addr::parse("127.0.0.1:0").unwrap();
    let server = cypress::store::spawn(store.clone(), &addr).unwrap();

    let opts = [
        QueryOptions::default(),
        QueryOptions {
            strategy: cypress::query::Strategy::PartialExpansion,
            hotspot_limit: 5,
        },
    ];
    for name in names {
        let local = cypress::read_container(tmp.0.join(format!("{name}.cytc"))).unwrap();
        for opt in &opts {
            let reference = local.query_with(opt).unwrap();
            let via_store = store.open(name).unwrap().query(opt).unwrap();
            assert_eq!(via_store, reference, "{name}: store != local");
            assert_eq!(
                via_store.to_bytes(),
                reference.to_bytes(),
                "{name}: store wire bytes differ"
            );
            let via_daemon =
                query_remote(server.addr(), name, opt, Duration::from_secs(20)).unwrap();
            assert_eq!(via_daemon, reference, "{name}: remote != local");
            assert_eq!(
                via_daemon.to_bytes(),
                reference.to_bytes(),
                "{name}: remote wire bytes differ"
            );
            assert_eq!(
                via_daemon.render_json(),
                reference.render_json(),
                "{name}: remote JSON differs"
            );
        }
    }
    server.stop();
}
