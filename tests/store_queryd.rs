//! End-to-end identity across the three query paths: for bundled
//! workloads, the eager local load ([`cypress::LoadedJob`]), the zero-copy
//! store ([`cypress::store::JobStore`]), and the resident daemon must
//! produce byte-identical answers — same canonical wire bytes, same JSON.
//! Also pins the analysis frames (protocol v3) and both directions of
//! version negotiation on the query port.

use cypress::analysis::AnalyzeOptions;
use cypress::net::proto::{codes, read_frame, write_frame, Frame};
use cypress::net::{Addr, Listener, Stream};
use cypress::query::Window;
use cypress::store::{analyze_remote, query_remote, JobStore, StoreConfig, StoreError};
use cypress::trace::Codec;
use cypress::workloads::{by_name, quick_procs, Scale};
use cypress::{Pipeline, QueryOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "cypress-store-queryd-{name}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn all_three_query_paths_agree_on_bundled_workloads() {
    let tmp = TempDir::new("identity");
    let names = ["jacobi", "cg", "dt", "mg"];
    for name in names {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let mut job = Pipeline::new(w.source)
            .ranks(w.nprocs)
            .run()
            .unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
        job.merge();
        job.write_container_with(tmp.0.join(format!("{name}.cytc")), true, None)
            .unwrap();
    }

    let store = Arc::new(JobStore::new(&tmp.0, StoreConfig::default()).unwrap());
    let addr = cypress::net::Addr::parse("127.0.0.1:0").unwrap();
    let server = cypress::store::spawn(store.clone(), &addr).unwrap();

    let opts = [
        QueryOptions::default(),
        QueryOptions {
            strategy: cypress::query::Strategy::PartialExpansion,
            hotspot_limit: 5,
            window: None,
        },
    ];
    for name in names {
        let local = cypress::read_container(tmp.0.join(format!("{name}.cytc"))).unwrap();
        for opt in &opts {
            let reference = local.query_with(opt).unwrap();
            let via_store = store.open(name).unwrap().query(opt).unwrap();
            assert_eq!(via_store, reference, "{name}: store != local");
            assert_eq!(
                via_store.to_bytes(),
                reference.to_bytes(),
                "{name}: store wire bytes differ"
            );
            let via_daemon =
                query_remote(server.addr(), name, opt, Duration::from_secs(20)).unwrap();
            assert_eq!(via_daemon, reference, "{name}: remote != local");
            assert_eq!(
                via_daemon.to_bytes(),
                reference.to_bytes(),
                "{name}: remote wire bytes differ"
            );
            assert_eq!(
                via_daemon.render_json(),
                reference.render_json(),
                "{name}: remote JSON differs"
            );
        }
    }
    server.stop();
}

/// One workload container in a fresh store, served by a daemon.
fn serve_one(tag: &str, name: &str) -> (TempDir, Arc<JobStore>, cypress::store::ServerHandle) {
    let tmp = TempDir::new(tag);
    let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
    let mut job = Pipeline::new(w.source)
        .ranks(w.nprocs)
        .run()
        .unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
    job.merge();
    job.write_container_with(tmp.0.join(format!("{name}.cytc")), true, None)
        .unwrap();
    let store = Arc::new(JobStore::new(&tmp.0, StoreConfig::default()).unwrap());
    let addr = Addr::parse("127.0.0.1:0").unwrap();
    let server = cypress::store::spawn(store.clone(), &addr).unwrap();
    (tmp, store, server)
}

#[test]
fn analyze_remote_equals_local_including_windowed() {
    let (_tmp, store, server) = serve_one("analyze", "jacobi");
    let opts_list = [
        AnalyzeOptions::default(),
        AnalyzeOptions {
            window: Some(Window {
                start_ns: 0,
                end_ns: u64::MAX,
            }),
        },
    ];
    let handle = store.open("jacobi").unwrap();
    for opts in &opts_list {
        let local = handle.analyze(opts).unwrap();
        let remote =
            analyze_remote(server.addr(), "jacobi", opts, Duration::from_secs(20)).unwrap();
        assert_eq!(remote, local, "remote analysis != local");
        assert_eq!(
            remote.to_bytes(),
            local.to_bytes(),
            "analysis wire bytes differ"
        );
        assert_eq!(
            remote.render_json(),
            local.render_json(),
            "analysis JSON differs"
        );
    }
    server.stop();
}

/// New-client/old-server direction: a peer that answers a frame it does not
/// understand with a protocol `Error` frame (exactly what this server does
/// for unknown codes) must surface as `StoreError::Remote` in the client,
/// not as a transport failure.
#[test]
fn client_surfaces_protocol_error_from_older_server() {
    let listener = Listener::bind(&Addr::parse("127.0.0.1:0").unwrap()).unwrap();
    let addr = listener.local_addr().unwrap();
    let t = std::thread::spawn(move || {
        let mut s = listener.accept().unwrap();
        // An old server fails to decode the analysis frame and answers with
        // the stock protocol error, keeping the connection open.
        let _ = read_frame(&mut s);
        write_frame(
            &mut s,
            &Frame::Error {
                code: codes::PROTOCOL,
                message: "unsupported frame code 13".into(),
            },
        )
        .unwrap();
    });
    let err = analyze_remote(
        &addr,
        "jacobi",
        &AnalyzeOptions::default(),
        Duration::from_secs(20),
    )
    .unwrap_err();
    t.join().unwrap();
    match err {
        StoreError::Remote { code, .. } => assert_eq!(code, codes::PROTOCOL),
        other => panic!("expected Remote protocol error, got {other:?}"),
    }
}

/// Old-client/new-server direction: the server answers frame codes from the
/// future with a protocol error frame *without dropping the connection*, so
/// an interleaved v2-style query on the same stream still succeeds.
#[test]
fn unknown_frame_gets_error_reply_and_connection_survives() {
    let (_tmp, store, server) = serve_one("unknown-frame", "jacobi");
    let mut s = Stream::connect(server.addr(), Duration::from_secs(5)).unwrap();
    s.set_io_timeout(Duration::from_secs(20)).unwrap();

    // Hand-craft a frame with a code this server has never heard of:
    // [len u32][body = code + payload][crc32(body)].
    let body: &[u8] = &[0xEE, 7, 7, 7];
    let mut wire = Vec::new();
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(body);
    wire.extend_from_slice(&cypress::deflate::crc32(body).to_le_bytes());
    s.write_all(&wire).unwrap();
    s.flush().unwrap();

    match read_frame(&mut s).unwrap() {
        Frame::Error { code, message } => {
            assert_eq!(code, codes::PROTOCOL);
            assert!(
                message.contains("238"),
                "error should name the offending code: {message}"
            );
        }
        other => panic!("expected protocol error frame, got {}", other.name()),
    }

    // The same connection must still answer a plain (v2-era) query...
    write_frame(
        &mut s,
        &Frame::QueryRequest {
            job: "jacobi".into(),
            options: QueryOptions::default().to_bytes(),
        },
    )
    .unwrap();
    let reference = store
        .open("jacobi")
        .unwrap()
        .query(&QueryOptions::default())
        .unwrap();
    match read_frame(&mut s).unwrap() {
        Frame::QueryResponse { result } => {
            assert_eq!(result, reference.to_bytes(), "query after unknown frame");
        }
        other => panic!("expected query response, got {}", other.name()),
    }

    // ...and an analysis request (v3) on the very same stream.
    write_frame(
        &mut s,
        &Frame::AnalyzeRequest {
            job: "jacobi".into(),
            options: AnalyzeOptions::default().to_bytes(),
        },
    )
    .unwrap();
    let want = store
        .open("jacobi")
        .unwrap()
        .analyze(&AnalyzeOptions::default())
        .unwrap();
    match read_frame(&mut s).unwrap() {
        Frame::AnalyzeResponse { result } => {
            assert_eq!(result, want.to_bytes(), "analysis after unknown frame");
        }
        other => panic!("expected analyze response, got {}", other.name()),
    }
    server.stop();
}
