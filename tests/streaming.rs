//! Streaming-session acceptance tests: the online path must be
//! *byte-identical* to the batch path, and the on-disk container must round
//! trip every workload's exact event sequence without re-simulation.

use cypress::core::{merge_all, merge_all_parallel};
use cypress::trace::codec::Codec;
use cypress::trace::event::{MpiOp, MpiParams};
use cypress::workloads::{by_name, quick_procs, Scale, NPB_NAMES};
use cypress::{Ingest, Pipeline, PipelineConfig};

type OpSeq = Vec<(u32, MpiOp, MpiParams)>;

fn strip_raw(t: &cypress::trace::RawTrace) -> OpSeq {
    t.mpi_records()
        .map(|r| (r.gid, r.op, r.params.clone()))
        .collect()
}

fn strip_replay(ops: &[cypress::core::ReplayOp]) -> OpSeq {
    ops.iter()
        .map(|o| (o.gid, o.op, o.params.clone()))
        .collect()
}

fn all_workload_names() -> impl Iterator<Item = &'static str> {
    NPB_NAMES.iter().copied().chain(["jacobi", "leslie3d"])
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cypress-streaming-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The headline acceptance criterion: for every workload, the streaming
/// pipeline's merged CTT *encoding* is byte-for-byte the batch pipeline's.
/// Both paths merge with the same thread count, so even the floating-point
/// time statistics fold in the same order.
#[test]
fn streaming_merged_bytes_equal_batch_on_all_workloads() {
    for name in all_workload_names() {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let cfg = PipelineConfig {
            threads: 4,
            ..PipelineConfig::default()
        };
        let mut stream = Pipeline::new(w.source.clone())
            .ranks(w.nprocs)
            .configure(cfg.clone())
            .run()
            .unwrap_or_else(|e| panic!("{name}: streaming run failed: {e}"));
        let mut batch = Pipeline::new(w.source.clone())
            .ranks(w.nprocs)
            .configure(PipelineConfig {
                mode: Ingest::Batch,
                ..cfg
            })
            .run()
            .unwrap_or_else(|e| panic!("{name}: batch run failed: {e}"));

        assert_eq!(stream.ctts, batch.ctts, "{name}: per-rank CTTs diverged");
        for (a, b) in stream.ctts.iter().zip(&batch.ctts) {
            assert_eq!(
                a.to_bytes(),
                b.to_bytes(),
                "{name}: rank {} CTT encodings diverged",
                a.rank
            );
        }
        assert_eq!(
            stream.merge().to_bytes(),
            batch.merge().to_bytes(),
            "{name}: merged CTT encodings diverged"
        );
        // The streaming path actually streamed: per-rank session stats exist
        // and the resident footprint was sampled.
        assert_eq!(stream.stats.len(), w.nprocs as usize, "{name}");
        assert!(stream.peak_ctt_bytes() > 0, "{name}");
    }
}

/// Container acceptance criterion: write → read → decompress reproduces the
/// original per-rank event sequence for every workload.
#[test]
fn container_round_trips_all_workloads() {
    let dir = tmpdir("roundtrip");
    for name in all_workload_names() {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let traces = w.trace().unwrap();
        let path = dir.join(format!("{name}.cytc"));

        let mut job = Pipeline::new(w.source.clone())
            .ranks(w.nprocs)
            .run()
            .unwrap();
        job.write_container(&path, false).unwrap();

        let loaded = cypress::read_container(&path)
            .unwrap_or_else(|e| panic!("{name}: read_container failed: {e}"));
        assert_eq!(loaded.nprocs, w.nprocs, "{name}");
        for t in &traces {
            let replay = loaded
                .decompress(t.rank)
                .unwrap_or_else(|e| panic!("{name}: decompress rank {} failed: {e}", t.rank));
            assert_eq!(
                strip_replay(&replay),
                strip_raw(t),
                "{name}: rank {} sequence not preserved through the container",
                t.rank
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Per-rank sections take the dedicated-section path in `LoadedJob` and must
/// agree with merged-tree extraction.
#[test]
fn per_rank_sections_agree_with_merged_extraction() {
    let dir = tmpdir("per-rank");
    let w = by_name("cg", 8, Scale::Quick).unwrap();
    let path = dir.join("cg.cytc");
    let mut job = Pipeline::new(w.source.clone()).ranks(8).run().unwrap();
    job.write_container(&path, true).unwrap();

    let loaded = cypress::read_container(&path).unwrap();
    assert_eq!(loaded.rank_ctts.len(), 8);
    for rank in 0..8u32 {
        // Dedicated section…
        let via_section = loaded.decompress(rank).unwrap();
        // …vs extraction from the merged tree only.
        let merged_only = cypress::LoadedJob {
            nprocs: loaded.nprocs,
            meta: None,
            cst: loaded.cst.clone(),
            merged: loaded.merged.clone(),
            rank_ctts: Vec::new(),
            telemetry: None,
        };
        let via_merged = merged_only.decompress(rank).unwrap();
        assert_eq!(strip_replay(&via_section), strip_replay(&via_merged));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `merge_all_parallel` must be insensitive to awkward (prime, tiny,
/// larger-than-rank-count) thread counts at rank counts 3, 5, and 17.
#[test]
fn parallel_merge_handles_odd_rank_counts() {
    for nranks in [3u32, 5, 17] {
        let src = format!(
            "fn main() {{
                for i in 0..20 {{
                    let a = isend((rank() + 1) % {nranks}, 128, 0);
                    let b = irecv((rank() + {nranks} - 1) % {nranks}, 128, 0);
                    waitall(a, b);
                }}
                allreduce(4);
            }}"
        );
        let job = Pipeline::new(src).ranks(nranks).run().unwrap();
        let reference = merge_all(&job.ctts);
        for threads in [1usize, 2, 3, 5, 32] {
            let par = merge_all_parallel(&job.ctts, threads);
            assert_eq!(
                par.group_count(),
                reference.group_count(),
                "nranks={nranks} threads={threads}"
            );
            assert_eq!(
                par.to_bytes(),
                reference.to_bytes(),
                "nranks={nranks} threads={threads}: encodings diverged"
            );
        }
    }
}

/// Batched ingestion acceptance criterion: `push_batch` must produce CTTs
/// (and therefore containers) byte-identical to per-event `push` on every
/// bundled workload, at several batch granularities including the wire
/// chunk size the collector sees.
#[test]
fn push_batch_byte_identical_to_push_on_all_workloads() {
    use cypress::core::{CompressConfig, CompressSession, SessionConfig};
    for name in all_workload_names() {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let (_, info) = w.compile();
        let traces = w.trace().unwrap();
        for t in &traces {
            let mut one = CompressSession::new(
                &info.cst,
                t.rank,
                w.nprocs,
                CompressConfig::default(),
                SessionConfig::default(),
            );
            for ev in &t.events {
                one.push(ev);
            }
            let (want_ctt, want_stats) = one.finish(t.app_time);
            let want = want_ctt.to_bytes();

            for chunk in [t.events.len().max(1), 512, 7] {
                let mut batched = CompressSession::new(
                    &info.cst,
                    t.rank,
                    w.nprocs,
                    CompressConfig::default(),
                    SessionConfig::default(),
                );
                for c in t.events.chunks(chunk) {
                    batched.push_batch(c);
                }
                let (ctt, stats) = batched.finish(t.app_time);
                assert_eq!(
                    ctt.to_bytes(),
                    want,
                    "{name}: rank {} chunk {chunk} diverged from per-event push",
                    t.rank
                );
                assert_eq!(stats.events, want_stats.events, "{name} rank {}", t.rank);
                assert_eq!(
                    stats.mpi_events, want_stats.mpi_events,
                    "{name} rank {}",
                    t.rank
                );
                assert_eq!(
                    stats.raw_mpi_bytes, want_stats.raw_mpi_bytes,
                    "{name} rank {}",
                    t.rank
                );
            }
        }
    }
}

/// `push_batch` under the checkpoint/backpressure path: checkpoints must
/// land on the same event indices as per-event push (same count, same
/// budget-violation accounting), and the CTT must stay byte-identical even
/// when batch boundaries straddle checkpoint boundaries.
#[test]
fn push_batch_checkpoint_and_backpressure_match_push() {
    use cypress::core::{CompressConfig, CompressSession, SessionConfig};
    let w = by_name("cg", 8, Scale::Quick).unwrap();
    let (_, info) = w.compile();
    let traces = w.trace().unwrap();
    for t in &traces {
        // Checkpoint several times over the trace, on an awkward stride.
        let scfg = SessionConfig {
            checkpoint_every: (t.events.len() as u64 / 4).max(1) | 1,
            soft_budget_bytes: Some(1),
        };
        let mut one = CompressSession::new(
            &info.cst,
            t.rank,
            8,
            CompressConfig::default(),
            scfg.clone(),
        );
        for ev in &t.events {
            one.push(ev);
        }
        let (want_ctt, want_stats) = one.finish(t.app_time);
        assert!(
            want_stats.checkpoints > 1,
            "config must actually checkpoint"
        );
        assert!(
            want_stats.budget_violations > 0,
            "budget must actually trip"
        );

        for chunk in [
            13usize,
            scfg.checkpoint_every as usize,
            scfg.checkpoint_every as usize + 3,
            4096,
        ] {
            let mut batched = CompressSession::new(
                &info.cst,
                t.rank,
                8,
                CompressConfig::default(),
                scfg.clone(),
            );
            for c in t.events.chunks(chunk) {
                batched.push_batch(c);
            }
            let (ctt, stats) = batched.finish(t.app_time);
            assert_eq!(ctt.to_bytes(), want_ctt.to_bytes(), "chunk {chunk}");
            assert_eq!(stats.checkpoints, want_stats.checkpoints, "chunk {chunk}");
            assert_eq!(
                stats.budget_violations, want_stats.budget_violations,
                "chunk {chunk}"
            );
        }
    }
}

/// Parallel per-section encoding acceptance criterion: a container written
/// with many encode workers is byte-identical to the sequential one, at the
/// pinned default level and with per-rank sections in play.
#[test]
fn parallel_container_encoding_identical_to_sequential() {
    use cypress::deflate::Level;
    let dir = tmpdir("parallel-encode");
    for name in ["cg", "jacobi"] {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let mut seq = Pipeline::new(w.source.clone())
            .ranks(w.nprocs)
            .configure(PipelineConfig {
                threads: 1,
                level: Some(Level::Default),
                ..PipelineConfig::default()
            })
            .run()
            .unwrap();
        let mut par = Pipeline::new(w.source.clone())
            .ranks(w.nprocs)
            .configure(PipelineConfig {
                threads: 8,
                level: Some(Level::Default),
                ..PipelineConfig::default()
            })
            .run()
            .unwrap();
        let p_seq = dir.join(format!("{name}-seq.cytc"));
        let p_par = dir.join(format!("{name}-par.cytc"));
        seq.write_container(&p_seq, true).unwrap();
        par.write_container(&p_par, true).unwrap();
        let a = std::fs::read(&p_seq).unwrap();
        let b = std::fs::read(&p_par).unwrap();
        assert_eq!(a, b, "{name}: parallel encoding changed container bytes");

        // And the compressed container still round-trips.
        let loaded = cypress::read_container(&p_par).unwrap();
        let traces = w.trace().unwrap();
        for t in &traces {
            let replay = loaded.decompress(t.rank).unwrap();
            assert_eq!(
                strip_replay(&replay),
                strip_raw(t),
                "{name} rank {}",
                t.rank
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Session accounting sanity on a real workload: the event counts match the
/// recorded trace, and the resident footprint stays far below the raw trace.
#[test]
fn session_stats_match_trace_reality() {
    let w = by_name("mg", 8, Scale::Quick).unwrap();
    let traces = w.trace().unwrap();
    let job = Pipeline::new(w.source.clone()).ranks(8).run().unwrap();
    for (st, t) in job.stats.iter().zip(&traces) {
        assert_eq!(st.events as usize, t.events.len(), "rank {}", t.rank);
        assert_eq!(st.mpi_events as usize, t.mpi_count(), "rank {}", t.rank);
        assert!(st.final_ctt_bytes <= st.peak_ctt_bytes);
    }
}

/// The adaptive-batcher pin (fold-run credit): on every bundled workload,
/// feeding a session with `push_batch` must not be slower than per-event
/// `push`. Before the credit heuristic, alternating-gid streams (sp) paid
/// for a run scan that never found runs and regressed to 0.64×. Timing
/// tests flake, so compare best-of-N interleaved samples with a generous
/// tolerance — the pre-fix regression (≈1.56× slower) still fails it.
#[test]
fn push_batch_not_slower_than_push_on_any_workload() {
    use cypress::core::{CompressConfig, CompressSession, SessionConfig};
    use std::time::Instant;
    for name in all_workload_names() {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let (_, info) = w.compile();
        let traces = w.trace().unwrap();
        let t = &traces[0];
        let session = || {
            CompressSession::new(
                &info.cst,
                t.rank,
                w.nprocs,
                CompressConfig::default(),
                SessionConfig::default(),
            )
        };
        let (mut best_push, mut best_batch) = (u128::MAX, u128::MAX);
        for _ in 0..9 {
            let mut s = session();
            let t0 = Instant::now();
            for ev in &t.events {
                s.push(ev);
            }
            best_push = best_push.min(t0.elapsed().as_nanos());
            std::hint::black_box(s.finish(t.app_time));

            let mut s = session();
            let t0 = Instant::now();
            for c in t.events.chunks(512) {
                s.push_batch(c);
            }
            best_batch = best_batch.min(t0.elapsed().as_nanos());
            std::hint::black_box(s.finish(t.app_time));
        }
        assert!(
            best_batch as f64 <= best_push as f64 * 1.4,
            "{name}: push_batch {best_batch} ns vs push {best_push} ns — batched ingest regressed"
        );
    }
}
