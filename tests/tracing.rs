//! Golden test for the structured-tracing export: a traced compression run
//! must produce Chrome trace-event JSON that actually parses, contains
//! `Complete` spans, and keeps per-thread timestamps monotonic — the three
//! properties Perfetto / `chrome://tracing` rely on to render a timeline.
//!
//! The repo is std-only, so the test carries its own minimal recursive-
//! descent JSON parser rather than depending on serde.

use cypress::Pipeline;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (objects, arrays, strings, f64 numbers,
// booleans, null). Strict enough to reject the usual export bugs: trailing
// commas, unterminated strings, bare words.
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at offset {}", other, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| {
            c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-'
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at offset {start}: {e}"))
    }
}

// ---------------------------------------------------------------------------
// The golden test proper.
// ---------------------------------------------------------------------------

const SRC: &str = r#"fn main() {
    for it in 0..64 {
        let up = isend((rank() + 1) % size(), 128, 3);
        let dn = irecv((rank() + size() - 1) % size(), 128, 3);
        waitall(up, dn);
        allreduce(32);
    }
}"#;

#[test]
fn traced_compress_run_exports_valid_chrome_trace() {
    let _guard = cypress::obs::test_mutex().lock().unwrap();
    cypress::obs::trace_reset();
    cypress::obs::set_trace_enabled(true);

    let mut job = {
        let _root = cypress::obs::trace_span("cli", "total");
        Pipeline::new(SRC).ranks(4).run().unwrap()
    };
    job.merge();

    cypress::obs::set_trace_enabled(false);
    let dump = cypress::obs::trace_drain();
    assert_eq!(dump.dropped, 0, "ring overflow in a 64-iteration run");
    let text = dump.to_chrome_json();

    let doc = Parser::parse(&text).expect("trace export must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every event carries the Chrome-required fields; Complete spans also
    // carry a duration.
    let mut complete = 0usize;
    let mut by_tid: Vec<(f64, f64)> = Vec::new(); // (tid, ts) in arrival order
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        let ts = e.get("ts").and_then(Json::as_num).expect("ts");
        let tid = e.get("tid").and_then(Json::as_num).expect("tid");
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("cat").and_then(Json::as_str).is_some());
        if ph == "X" {
            complete += 1;
            assert!(e.get("dur").and_then(Json::as_num).is_some(), "X needs dur");
        }
        by_tid.push((tid, ts));
    }
    assert!(complete > 0, "a traced run must emit Complete spans");

    // Per-thread timestamps must be non-decreasing in export order — the
    // drain sorts by (tid, ts), and viewers assume it.
    let mut tids: Vec<u64> = by_tid.iter().map(|(t, _)| *t as u64).collect();
    tids.dedup();
    let mut sorted = tids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(tids.len(), sorted.len(), "events not grouped by tid");
    for w in by_tid.windows(2) {
        if w[0].0 == w[1].0 {
            assert!(w[0].1 <= w[1].1, "timestamps regress within tid {}", w[0].0);
        }
    }

    // The ingest work shows up attributed: the profile sees the pipeline's
    // stage spans under the root.
    let profile = dump.profile("total");
    assert!(profile.total_ns > 0);
    assert!(profile.wall_of("ingest") > 0, "ingest stage missing");

    // droppedEvents metadata survives the round trip.
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("droppedEvents"))
        .and_then(Json::as_num)
        .expect("otherData.droppedEvents");
    assert_eq!(dropped, 0.0);
    cypress::obs::trace_reset();
}

#[test]
fn parser_rejects_malformed_json() {
    for bad in [
        "{\"a\":1,}",
        "[1 2]",
        "{\"a\" 1}",
        "\"unterminated",
        "{\"a\":tru}",
        "",
    ] {
        assert!(Parser::parse(bad).is_err(), "accepted {bad:?}");
    }
    let ok = Parser::parse("{\"a\":[1,2.5,-3e2],\"b\":null,\"c\":true}").unwrap();
    assert_eq!(ok.get("a").and_then(Json::as_arr).unwrap().len(), 3);
}
