//! End-to-end tests of the `cypress` command-line binary.

use std::fs;
use std::process::Command;

fn cypress() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cypress"))
}

fn write_program(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("ring.mpi");
    fs::write(
        &path,
        r#"
        fn main() {
            for k in 0..30 {
                let a = isend((rank() + 1) % size(), 2048, 0);
                let b = irecv((rank() + size() - 1) % size(), 2048, 0);
                waitall(a, b);
                compute(5000);
            }
            allreduce(8);
        }
        "#,
    )
    .expect("write program");
    path
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cypress-cli-test-{name}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn cst_command_prints_tree() {
    let dir = tmpdir("cst");
    let prog = write_program(&dir);
    let out = cypress().arg("cst").arg(&prog).output().expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Root(Loop("));
    assert!(stdout.contains("MPI_Isend"));
    assert!(stdout.contains("MPI_Allreduce"));
}

#[test]
fn compress_then_decompress_round_trip() {
    let dir = tmpdir("compress");
    let prog = write_program(&dir);
    let merged = dir.join("ring.ctt");
    let out = cypress()
        .args(["compress"])
        .arg(&prog)
        .args(["-n", "8", "-o"])
        .arg(&merged)
        .output()
        .expect("run compress");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(merged.exists());
    let cst = dir.join("ring.ctt.cst");
    assert!(cst.exists());

    let out = cypress()
        .arg("decompress")
        .arg(&merged)
        .arg("--cst")
        .arg(&cst)
        .args(["-r", "5"])
        .output()
        .expect("run decompress");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // 30 iterations × 3 ops + 1 allreduce = 91 operations for rank 5.
    assert!(stdout.contains("# rank 5: 91 operations"), "{stdout}");
    assert!(stdout.contains("MPI_Waitall"));
}

#[test]
fn stream_compress_inspect_decompress_round_trip() {
    let dir = tmpdir("stream");
    let prog = write_program(&dir);
    let container = dir.join("ring.cytc");
    let out = cypress()
        .args(["compress"])
        .arg(&prog)
        .args(["-n", "8", "--stream", "--per-rank", "-o"])
        .arg(&container)
        .output()
        .expect("run compress --stream");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("streamed"), "{stdout}");
    assert!(stdout.contains("peak resident CTT"), "{stdout}");
    // No CST sidecar: the container is self-describing.
    assert!(!dir.join("ring.cytc.cst").exists());
    let header = fs::read(&container).expect("container");
    assert_eq!(&header[..4], b"CYTC");

    let out = cypress()
        .arg("inspect")
        .arg(&container)
        .output()
        .expect("run inspect");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cypress container v3, 8 ranks"), "{stdout}");
    for kind in ["meta", "cst-text", "merged-ctt", "rank-ctt"] {
        assert!(stdout.contains(kind), "missing {kind} in:\n{stdout}");
    }
    assert!(stdout.contains("rank groups"), "{stdout}");

    // Decompress straight from the container — no --cst needed.
    let out = cypress()
        .arg("decompress")
        .arg(&container)
        .args(["-r", "5"])
        .output()
        .expect("run decompress");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# rank 5: 91 operations"), "{stdout}");
}

#[test]
fn corrupt_container_is_rejected_cleanly() {
    let dir = tmpdir("corrupt");
    let prog = write_program(&dir);
    let container = dir.join("ring.cytc");
    let out = cypress()
        .args(["compress"])
        .arg(&prog)
        .args(["-n", "4", "--stream", "-o"])
        .arg(&container)
        .output()
        .expect("run compress --stream");
    assert!(out.status.success());
    let mut bytes = fs::read(&container).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    fs::write(&container, &bytes).unwrap();
    let out = cypress()
        .arg("inspect")
        .arg(&container)
        .output()
        .expect("run inspect on corrupt file");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("crc mismatch") || stderr.contains("corrupt"),
        "{stderr}"
    );
}

#[test]
fn simulate_reports_prediction() {
    let dir = tmpdir("simulate");
    let prog = write_program(&dir);
    let out = cypress()
        .arg("simulate")
        .arg(&prog)
        .args(["-n", "4"])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("measured"));
    assert!(stdout.contains("prediction error"));
}

#[test]
fn dump_prints_events() {
    let dir = tmpdir("dump");
    let prog = write_program(&dir);
    let out = cypress()
        .arg("dump")
        .arg(&prog)
        .args(["-n", "2", "-r", "1"])
        .output()
        .expect("run dump");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("# rank 1/2"));
    assert!(stdout.contains("MPI_Isend"));
}

#[test]
fn metrics_flag_emits_report_and_jsonl() {
    let dir = tmpdir("metrics");
    let prog = write_program(&dir);
    let merged = dir.join("ring.ctt");
    let out = cypress()
        .current_dir(&dir)
        .args(["--metrics", "compress"])
        .arg(&prog)
        .args(["-n", "4", "-o"])
        .arg(&merged)
        .output()
        .expect("run compress --metrics");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== metrics =="), "{stdout}");
    // Every pipeline layer exercised by `compress` must be represented.
    for scope in ["interp", "compressor", "merge", "codec"] {
        assert!(
            stdout.contains(scope),
            "missing scope {scope} in:\n{stdout}"
        );
    }
    assert!(stdout.contains("events_emitted"));
    assert!(stdout.contains("leaf_fold_hits"));
    // The JSONL sidecar exists and every line is a flat JSON object.
    let jsonl = fs::read_to_string(dir.join("results/metrics.jsonl")).expect("metrics.jsonl");
    assert!(!jsonl.trim().is_empty());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"subsystem\":"), "bad line: {line}");
        assert!(line.ends_with('}'), "bad line: {line}");
    }
}

#[test]
fn bad_input_fails_cleanly() {
    let dir = tmpdir("bad");
    let path = dir.join("broken.mpi");
    fs::write(&path, "fn main() { send(0, 1 }").unwrap();
    let out = cypress().arg("cst").arg(&path).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    let out = cypress().arg("nonsense").output().expect("run");
    assert!(!out.status.success());
}
