//! Pipelined-ingest acceptance tests: generation and compression decoupled
//! by per-rank SPSC rings must be *byte-identical* to the sequential
//! streaming path — per-rank CTTs, merged tree, session accounting, and the
//! on-disk container — at every thread count and awkward ring capacity, and
//! the drain protocol must never deadlock when a producer dies mid-stream.

use cypress::deflate::Level;
use cypress::runtime::{run_ranks_pipelined, InterpConfig};
use cypress::trace::codec::Codec;
use cypress::workloads::{by_name, quick_procs, Scale, NPB_NAMES};
use cypress::{Ingest, Pipeline, PipelineConfig};

fn all_workload_names() -> impl Iterator<Item = &'static str> {
    NPB_NAMES.iter().copied().chain(["jacobi", "leslie3d"])
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cypress-pipelined-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The headline criterion: for every bundled workload, at producer-pool
/// widths 1, 2, and 8, the pipelined run's per-rank CTT encodings, merged
/// encoding, and session accounting all match the sequential streaming run.
#[test]
fn pipelined_byte_identical_to_sequential_on_all_workloads() {
    for name in all_workload_names() {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let mut reference = Pipeline::new(w.source.clone())
            .ranks(w.nprocs)
            .configure(PipelineConfig {
                threads: 4,
                ..PipelineConfig::default()
            })
            .run()
            .unwrap_or_else(|e| panic!("{name}: sequential run failed: {e}"));
        let want_merged = reference.merge().to_bytes();

        for threads in [1usize, 2, 8] {
            let mut piped = Pipeline::new(w.source.clone())
                .ranks(w.nprocs)
                .configure(PipelineConfig {
                    threads,
                    mode: Ingest::pipelined(),
                    ..PipelineConfig::default()
                })
                .run()
                .unwrap_or_else(|e| panic!("{name}: pipelined run failed: {e}"));

            assert_eq!(
                piped.ctts.len(),
                reference.ctts.len(),
                "{name} threads={threads}"
            );
            for (a, b) in piped.ctts.iter().zip(&reference.ctts) {
                assert_eq!(
                    a.to_bytes(),
                    b.to_bytes(),
                    "{name} threads={threads}: rank {} CTT encodings diverged",
                    a.rank
                );
            }
            assert_eq!(
                piped.merge().to_bytes(),
                want_merged,
                "{name} threads={threads}: merged CTT encodings diverged"
            );
            // The pipelined path is still a streaming path: full session
            // accounting, identical to the sequential sessions'.
            assert_eq!(piped.stats.len(), w.nprocs as usize, "{name}");
            for (a, b) in piped.stats.iter().zip(&reference.stats) {
                assert_eq!(a.events, b.events, "{name} threads={threads}");
                assert_eq!(a.mpi_events, b.mpi_events, "{name} threads={threads}");
                assert_eq!(a.raw_mpi_bytes, b.raw_mpi_bytes, "{name} threads={threads}");
                assert_eq!(a.checkpoints, b.checkpoints, "{name} threads={threads}");
            }
        }
    }
}

/// Awkward ring capacities — 1 (every batch blocks on the consumer), 2, and
/// an odd 3 — must not change a single byte. Capacity only affects *when*
/// producers block, never what the consumer sees.
#[test]
fn pipelined_awkward_ring_capacities_identical() {
    let w = by_name("cg", 8, Scale::Quick).unwrap();
    let reference = Pipeline::new(w.source.clone())
        .ranks(8)
        .configure(PipelineConfig {
            threads: 2,
            ..PipelineConfig::default()
        })
        .run()
        .unwrap();
    for capacity in [1usize, 2, 3] {
        let piped = Pipeline::new(w.source.clone())
            .ranks(8)
            .configure(PipelineConfig {
                threads: 2,
                mode: Ingest::Pipelined { capacity },
                ..PipelineConfig::default()
            })
            .run()
            .unwrap_or_else(|e| panic!("capacity {capacity}: {e}"));
        for (a, b) in piped.ctts.iter().zip(&reference.ctts) {
            assert_eq!(
                a.to_bytes(),
                b.to_bytes(),
                "capacity {capacity}: rank {} diverged",
                a.rank
            );
        }
    }
}

/// Container criterion: a `.cytc` written from a pipelined job (per-rank
/// sections, pinned DEFLATE level) is byte-for-byte the sequential one.
#[test]
fn pipelined_container_bytes_identical_to_sequential() {
    let dir = tmpdir("container");
    for name in ["cg", "jacobi"] {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let cfg = PipelineConfig {
            threads: 2,
            level: Some(Level::Default),
            ..PipelineConfig::default()
        };
        let mut seq = Pipeline::new(w.source.clone())
            .ranks(w.nprocs)
            .configure(cfg.clone())
            .run()
            .unwrap();
        let mut piped = Pipeline::new(w.source.clone())
            .ranks(w.nprocs)
            .configure(PipelineConfig {
                mode: Ingest::pipelined(),
                ..cfg
            })
            .run()
            .unwrap();
        let p_seq = dir.join(format!("{name}-seq.cytc"));
        let p_pipe = dir.join(format!("{name}-pipe.cytc"));
        seq.write_container(&p_seq, true).unwrap();
        piped.write_container(&p_pipe, true).unwrap();
        assert_eq!(
            std::fs::read(&p_seq).unwrap(),
            std::fs::read(&p_pipe).unwrap(),
            "{name}: pipelined ingest changed container bytes"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drain protocol under producer death: a rank that hits its step budget
/// mid-stream closes its ring *without* the `Finish` marker; the consumer
/// must drain and discard, and the run must surface the error without
/// deadlocking — even at capacity 1 with more ranks than workers.
#[test]
fn producer_error_mid_stream_surfaces_without_deadlock() {
    let src = "fn main() { for i in 0..100000 { allreduce(8); } }";
    let r = Pipeline::new(src)
        .ranks(8)
        .configure(PipelineConfig {
            threads: 2,
            mode: Ingest::Pipelined { capacity: 1 },
            interp: InterpConfig {
                max_steps: 5_000,
                ..InterpConfig::default()
            },
            ..PipelineConfig::default()
        })
        .run();
    match r {
        Err(cypress::Error::Runtime(e)) => {
            assert!(e.to_string().contains("budget"), "unexpected error: {e}")
        }
        other => panic!("expected runtime error, got {:?}", other.map(|j| j.nprocs)),
    }
}

/// Interleaving stress on the raw runner: many more ranks than workers, so
/// producer completion order is effectively shuffled against ring index
/// order, with rank-dependent stream lengths and tiny batches. Every event
/// must arrive in order with its rank's `app_time`.
#[test]
fn run_ranks_pipelined_shuffled_completion_order() {
    use cypress::trace::event::Event;
    for (threads, capacity, batch) in [(1usize, 1usize, 1usize), (2, 2, 3), (8, 3, 7)] {
        let nprocs = 17u32;
        let out = run_ranks_pipelined(
            nprocs,
            threads,
            capacity,
            batch,
            |rank, sink| {
                // Rank r emits 3*r+1 events: later ranks run longer, so the
                // pool retires rings out of index order.
                for i in 0..(3 * rank + 1) {
                    cypress::trace::event::EventSink::event(
                        sink,
                        Event::Enter {
                            gid: rank * 1000 + i,
                        },
                    );
                }
                Ok(rank as u64 * 10 + 7)
            },
            |rank| (rank, Vec::<Event>::new()),
            |state, evs| state.1.extend_from_slice(evs),
            |state, app_time| (state.0, state.1, app_time),
        )
        .unwrap();
        assert_eq!(out.len(), nprocs as usize);
        for (rank, evs, app_time) in out {
            assert_eq!(app_time, rank as u64 * 10 + 7, "threads={threads}");
            let want: Vec<Event> = (0..(3 * rank + 1))
                .map(|i| Event::Enter {
                    gid: rank * 1000 + i,
                })
                .collect();
            assert_eq!(
                evs, want,
                "rank {rank} threads={threads} capacity={capacity}"
            );
        }
    }
}
