//! SPMD-divergence and failure-injection tests: ranks that take different
//! paths through the program (master/worker splits, subset participation,
//! zero-work ranks) must compress, merge, and extract correctly — and
//! genuinely broken programs must fail loudly, not silently.

use cypress::core::{compress_trace, decompress, merge_all, CompressConfig};
use cypress::cst::analyze_program;
use cypress::minilang::{check_program, parse};
use cypress::runtime::{trace_program, InterpConfig};
use cypress::simmpi::{from_raw_traces, simulate, LogGp};

fn pipeline(src: &str, nprocs: u32) -> (cypress::cst::StaticInfo, Vec<cypress::trace::RawTrace>) {
    let prog = parse(src).unwrap();
    check_program(&prog).unwrap();
    let info = analyze_program(&prog);
    let traces = trace_program(&prog, &info, nprocs, &InterpConfig::default()).unwrap();
    (info, traces)
}

#[test]
fn master_worker_divergence_round_trips() {
    let (info, traces) = pipeline(
        r#"fn main() {
            if rank() == 0 {
                for i in 0..(size() - 1) * 3 {
                    let r = irecv(any_source(), 128, 0);
                    wait(r);
                }
            } else {
                for j in 0..3 {
                    compute(1000 * rank());
                    send(0, 128, 0);
                }
            }
        }"#,
        5,
    );
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    // Master and workers have disjoint call paths; both round-trip.
    for (t, ctt) in traces.iter().zip(&ctts) {
        let replay = decompress(&info.cst, ctt);
        assert_eq!(replay.len(), t.mpi_count(), "rank {}", t.rank);
    }
    // The send-to-master records cover exactly the worker ranks. (They do
    // NOT collapse to one group: under relative encoding `send(0, …)` has a
    // different delta on every worker — the documented cost of the
    // rank±c method on master/worker codes.)
    let merged = merge_all(&ctts);
    for v in &merged.vertices {
        if let cypress::core::MergedVertex::Leaf(slots) = v {
            for slot in slots {
                let send_ranks: Vec<u32> = slot
                    .iter()
                    .filter(|(_, rec)| rec.params.op == cypress::trace::event::MpiOp::Send)
                    .flat_map(|(rs, _)| rs.ranks())
                    .collect();
                if !send_ranks.is_empty() {
                    assert_eq!(send_ranks, vec![1, 2, 3, 4]);
                }
            }
        }
    }
    // And the whole thing simulates (wildcards resolve across workers).
    simulate(&from_raw_traces(&traces), &LogGp::default()).unwrap();
}

#[test]
fn rank_with_no_communication_merges_cleanly() {
    let (info, traces) = pipeline(
        r#"fn main() {
            if rank() > 0 {
                if rank() < size() - 1 {
                    send(rank() + 1, 64, 0);
                }
                recv(rank() - 1, 64, 0);
                if rank() == 1 { send(0, 8, 9); }
            } else {
                // Rank 0 only receives a final token.
                recv(1, 8, 9);
            }
        }"#,
        6,
    );
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    let merged = merge_all(&ctts);
    for t in &traces {
        let replay = decompress(&info.cst, &merged.extract_rank(t.rank, &info.cst));
        assert_eq!(replay.len(), t.mpi_count(), "rank {}", t.rank);
    }
}

#[test]
fn subset_collective_is_detected_as_deadlock() {
    // A collective guarded by rank: classic SPMD bug. Tracing succeeds
    // (per-rank views are fine) but the simulator must flag it.
    let (_, traces) = pipeline(
        r#"fn main() {
            if rank() % 2 == 0 { barrier(); }
        }"#,
        4,
    );
    let err = simulate(&from_raw_traces(&traces), &LogGp::default()).unwrap_err();
    assert!(err.0.contains("deadlock"), "{err}");
}

#[test]
fn mismatched_collective_order_is_detected() {
    let (_, traces) = pipeline(
        r#"fn main() {
            if rank() == 0 { barrier(); allreduce(8); }
            else { allreduce(8); barrier(); }
        }"#,
        2,
    );
    let err = simulate(&from_raw_traces(&traces), &LogGp::default()).unwrap_err();
    assert!(
        err.0.contains("collective mismatch"),
        "expected mismatch, got {err}"
    );
}

#[test]
fn missing_partner_send_is_a_deadlock() {
    let (_, traces) = pipeline(
        r#"fn main() {
            if rank() == 0 { recv(1, 64, 0); }
            // Rank 1 never sends.
        }"#,
        2,
    );
    let err = simulate(&from_raw_traces(&traces), &LogGp::default()).unwrap_err();
    assert!(err.0.contains("deadlock"), "{err}");
}

#[test]
fn completely_empty_program_works_everywhere() {
    let (info, traces) = pipeline("fn main() { compute(10); }", 3);
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    assert!(ctts.iter().all(|c| c.record_count() == 0));
    let merged = merge_all(&ctts);
    assert_eq!(merged.group_count(), 0);
    let replay = decompress(&info.cst, &merged.extract_rank(0, &info.cst));
    assert!(replay.is_empty());
    let r = simulate(&from_raw_traces(&traces), &LogGp::default()).unwrap();
    assert_eq!(r.comm_time, vec![0, 0, 0]);
}
