//! Sharded collector trees must be invisible in the output: clients
//! submitting through relay collectors (in scrambled arrival order, with
//! ragged shard sizes) produce a root job whose merged CTT is
//! **byte-identical** to `merge_all` over locally-compressed ranks, and a
//! dead relay fails loudly — naming its shard's missing ranks — instead of
//! hanging.

use cypress::core::merge_all;
use cypress::cst::analyze_program;
use cypress::minilang::{check_program, parse};
use cypress::net::{
    spawn_tree, submit_stream, Addr, ClientConfig, CollectedJob, CollectorConfig, NetError, Tree,
    TreeConfig,
};
use cypress::runtime::{run_rank_with_sink, InterpConfig};
use cypress::trace::Codec;
use cypress::Pipeline;
use std::time::Duration;

const STENCIL: &str = r#"fn main() {
    for it in 0..40 {
        let up = isend((rank() + 1) % size(), 512, 1);
        let dn = irecv((rank() + size() - 1) % size(), 512, 1);
        waitall(up, dn);
        if it % 10 == 0 { allreduce(8); }
    }
    barrier();
}"#;

fn client_cfg() -> ClientConfig {
    ClientConfig {
        attempts: 5,
        backoff: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
        io_timeout: Duration::from_secs(10),
        chunk_events: 64,
        ..ClientConfig::default()
    }
}

fn tree_cfg(relays: u32, nprocs: u32) -> TreeConfig {
    TreeConfig {
        relays,
        nprocs,
        collector: CollectorConfig {
            deadline: Some(Duration::from_secs(60)),
            ..CollectorConfig::default()
        },
        client: client_cfg(),
    }
}

/// Stand up a tree on loopback TCP and submit every rank through its
/// relay's leaf endpoint, in the given order with a small stagger so
/// arrival order actually follows `order`.
fn collect_tree(source: &str, nprocs: u32, relays: u32, order: &[u32]) -> CollectedJob {
    let prog = parse(source).unwrap();
    check_program(&prog).unwrap();
    let info = analyze_program(&prog);
    let cst_text = info.cst.to_text();

    let tree = spawn_tree(
        &Addr::parse("127.0.0.1:0").unwrap(),
        &tree_cfg(relays, nprocs),
    )
    .unwrap();
    // Ceil-division sharding may need fewer relays than requested (6
    // ranks over 4 relays → three shards of 2).
    let nleaves = tree.leaves().len() as u32;
    assert!(nleaves >= 1 && nleaves <= relays.min(nprocs), "{nleaves}");

    std::thread::scope(|s| {
        for (i, &rank) in order.iter().enumerate() {
            let (tree, cst_text, prog, info) = (&tree, &cst_text, &prog, &info);
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(5 * i as u64));
                let leaf = tree.leaf_for_rank(rank);
                submit_stream(leaf, &client_cfg(), rank, nprocs, cst_text, |sink| {
                    run_rank_with_sink(prog, info, rank, nprocs, &InterpConfig::default(), {
                        #[allow(clippy::needless_borrow)]
                        &mut &mut *sink
                    })
                    .map_err(|e| e.to_string())
                })
                .unwrap();
            });
        }
    });
    tree.join().unwrap()
}

fn assert_matches_local(job: &CollectedJob, source: &str, nprocs: u32) {
    let ctts = Pipeline::new(source).ranks(nprocs).run().unwrap().ctts;
    let local = merge_all(&ctts);
    assert_eq!(
        job.merged.to_bytes(),
        local.to_bytes(),
        "tree-collected merge must be byte-identical to local merge_all"
    );
    assert_eq!(
        job.total_events,
        ctts.iter().map(|c| c.op_count()).sum::<u64>()
    );
}

#[test]
fn two_relays_scrambled_arrival_is_byte_identical_to_local_merge() {
    let nprocs = 16u32;
    // Scrambled across shard boundaries: ranks of both shards interleave.
    let order = [9u32, 2, 14, 0, 11, 5, 8, 15, 3, 12, 1, 10, 6, 13, 4, 7];
    let job = collect_tree(STENCIL, nprocs, 2, &order);
    assert_eq!(job.nprocs, nprocs);
    // Relay blocks carry no rank CTTs; the merged tree is the product.
    assert!(job.rank_ctts.is_empty());
    assert_matches_local(&job, STENCIL, nprocs);
}

#[test]
fn ragged_topologies_match_local_merge() {
    // Shards of uneven size (7 ranks over 3 relays → 3+3+1; 6 over 4 →
    // 2+2+2) exercise non-power-of-two block forwarding.
    for (nprocs, relays) in [(7u32, 3u32), (6, 4)] {
        let order: Vec<u32> = (0..nprocs).rev().collect();
        let job = collect_tree(STENCIL, nprocs, relays, &order);
        assert_matches_local(&job, STENCIL, nprocs);
    }
}

#[test]
fn dead_relay_fails_loudly_with_missing_ranks() {
    let nprocs = 8u32;
    let prog = parse(STENCIL).unwrap();
    check_program(&prog).unwrap();
    let info = analyze_program(&prog);
    let cst_text = info.cst.to_text();

    // A client aimed at an endpoint nobody serves gives up loudly.
    let dead = Addr::parse("127.0.0.1:1").unwrap();
    let quick = ClientConfig {
        attempts: 2,
        backoff: Duration::from_millis(1),
        backoff_max: Duration::from_millis(2),
        io_timeout: Duration::from_millis(200),
        ..ClientConfig::default()
    };
    let err = submit_stream(&dead, &quick, 0, nprocs, &cst_text, |_| Ok(0)).unwrap_err();
    assert!(
        matches!(err, NetError::RetriesExhausted { attempts: 2, .. }),
        "{err}"
    );

    // A tree whose second shard never submits (its relay is "dead" from
    // the clients' perspective) must hit the deadline naming ranks 4..8.
    let tree: Tree = spawn_tree(
        &Addr::parse("127.0.0.1:0").unwrap(),
        &TreeConfig {
            relays: 2,
            nprocs,
            collector: CollectorConfig {
                deadline: Some(Duration::from_millis(800)),
                ..CollectorConfig::default()
            },
            client: client_cfg(),
        },
    )
    .unwrap();
    std::thread::scope(|s| {
        for rank in 0..4u32 {
            let (tree, cst_text, prog, info) = (&tree, &cst_text, &prog, &info);
            s.spawn(move || {
                let leaf = tree.leaf_for_rank(rank);
                submit_stream(leaf, &client_cfg(), rank, nprocs, cst_text, |sink| {
                    run_rank_with_sink(prog, info, rank, nprocs, &InterpConfig::default(), {
                        #[allow(clippy::needless_borrow)]
                        &mut &mut *sink
                    })
                    .map_err(|e| e.to_string())
                })
                .unwrap();
            });
        }
    });
    let err = tree.join().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("deadline"), "{msg}");
    for r in ["4", "5", "6", "7"] {
        assert!(msg.contains(r), "missing rank {r} not named: {msg}");
    }
}
