//! Property-based fuzzing of the whole pipeline with randomly generated
//! MiniMPI programs.
//!
//! A seeded generator builds arbitrary (but well-formed, terminating,
//! valid-peer) SPMD programs with nested loops, rank-dependent branches,
//! user functions, non-blocking pairs, and collectives. For each program we
//! check the three headline invariants:
//!
//! 1. the CFG-based CST (Algorithm 1/2) equals the direct-AST oracle,
//! 2. `decompress(compress(trace))` reproduces each rank's exact sequence,
//! 3. compressed-domain queries (volume matrix, profile, totals, hot spots)
//!    equal the decompress-then-analyze reference, at both even and odd
//!    world sizes and with wildcard receives in the mix, and
//! 4. CTT-native analysis (LogGP replay prediction + late-sender waits)
//!    equals the decompress-then-analyze oracle exactly, tracks the
//!    raw-trace `simmpi::simulate` within the timing-averaging tolerance,
//!    and agrees with both on which programs are replay-invalid.

use cypress::analysis::{analyze_by_decompression, analyze_ctts, AnalyzeOptions};
use cypress::core::{compress_trace, decompress, CompressConfig};
use cypress::cst::{analyze_program_with, IntraBuilder};
use cypress::minilang::{check_program, parse};
use cypress::obs::rng::Rng;
use cypress::query::{query_by_decompression, query_ctts, QueryOptions, Window};
use cypress::runtime::{trace_program, InterpConfig};
use cypress::simmpi::{from_raw_traces, simulate_traced, LogGp};
use std::fmt::Write;

/// Generate a random well-formed MiniMPI program.
fn gen_program(seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let n_helpers = rng.range_usize(0..3);
    let mut out = String::new();
    let helper_names: Vec<String> = (0..n_helpers).map(|i| format!("helper{i}")).collect();
    for name in &helper_names {
        writeln!(out, "fn {name}(arg) {{").unwrap();
        gen_block(&mut rng, &mut out, &["arg"], &[], 2, 1);
        writeln!(out, "}}").unwrap();
    }
    writeln!(out, "fn main() {{").unwrap();
    gen_block(&mut rng, &mut out, &[], &helper_names, 3, 1);
    writeln!(out, "}}").unwrap();
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

/// Emit 1..=4 statements. `vars` are in-scope int variables; `helpers` are
/// callable function names; `depth` bounds structural nesting.
fn gen_block(
    rng: &mut Rng,
    out: &mut String,
    vars: &[&str],
    helpers: &[String],
    depth: usize,
    ind: usize,
) {
    let n = rng.range_usize(1..5);
    for _ in 0..n {
        gen_stmt(rng, out, vars, helpers, depth, ind);
    }
}

fn gen_int_expr(rng: &mut Rng, vars: &[&str]) -> String {
    match rng.range_u64(0..5) {
        0 => format!("{}", rng.range_i64(0..64)),
        1 => "rank()".to_string(),
        2 => "size()".to_string(),
        3 if !vars.is_empty() => vars[rng.range_usize(0..vars.len())].to_string(),
        _ => format!(
            "({} + {})",
            rng.range_i64(0..16),
            if vars.is_empty() || rng.chance(0.5) {
                "rank()".to_string()
            } else {
                vars[rng.range_usize(0..vars.len())].to_string()
            }
        ),
    }
}

fn gen_cond(rng: &mut Rng, vars: &[&str]) -> String {
    let lhs = gen_int_expr(rng, vars);
    let op = ["==", "!=", "<", "<=", ">", ">="][rng.range_usize(0..6)];
    match rng.range_u64(0..3) {
        0 => format!(
            "rank() % {} {op} {}",
            rng.range_i64(2..5),
            rng.range_i64(0..3)
        ),
        1 => format!("{lhs} {op} size()"),
        _ => format!(
            "{lhs} % {} {op} {}",
            rng.range_i64(2..6),
            rng.range_i64(0..4)
        ),
    }
}

fn gen_mpi(rng: &mut Rng, out: &mut String, vars: &[&str], ind: usize) {
    indent(out, ind);
    let bytes = [8i64, 64, 1024, 43 * 1024][rng.range_usize(0..4)];
    let tag = rng.range_i64(0..4);
    match rng.range_u64(0..7) {
        // Paired send/recv around the ring: always matches (every rank
        // sends to +k and receives from -k with the same tag).
        0 => {
            let k = rng.range_i64(1..4);
            writeln!(out, "send((rank() + {k}) % size(), {bytes}, {tag});").unwrap();
            indent(out, ind);
            writeln!(
                out,
                "recv((rank() + size() - {k}) % size(), {bytes}, {tag});"
            )
            .unwrap();
        }
        1 => {
            let k = rng.range_i64(1..4);
            writeln!(
                out,
                "let rq_a = isend((rank() + {k}) % size(), {bytes}, {tag});"
            )
            .unwrap();
            indent(out, ind);
            if rng.chance(0.5) {
                writeln!(
                    out,
                    "let rq_b = irecv((rank() + size() - {k}) % size(), {bytes}, {tag});"
                )
                .unwrap();
            } else {
                writeln!(out, "let rq_b = irecv(any_source(), {bytes}, {tag});").unwrap();
            }
            indent(out, ind);
            writeln!(out, "waitall(rq_a, rq_b);").unwrap();
        }
        2 => writeln!(out, "barrier();").unwrap(),
        3 => writeln!(out, "bcast(0, {bytes});").unwrap(),
        4 => writeln!(out, "reduce(0, {bytes});").unwrap(),
        5 => writeln!(out, "allreduce({bytes});").unwrap(),
        _ => {
            let k = rng.range_i64(1..3);
            writeln!(
                out,
                "sendrecv((rank() + {k}) % size(), {bytes}, {tag}, (rank() + size() - {k}) % size(), {bytes}, {tag});"
            )
            .unwrap();
        }
    }
    let _ = vars;
}

fn gen_stmt(
    rng: &mut Rng,
    out: &mut String,
    vars: &[&str],
    helpers: &[String],
    depth: usize,
    ind: usize,
) {
    let choice = rng.range_u64(0..10);
    match choice {
        0..=3 => gen_mpi(rng, out, vars, ind),
        4 | 5 if depth > 0 => {
            // A for loop; bound may be rank-dependent.
            let var = format!("i{depth}{ind}");
            let hi = match rng.range_u64(0..3) {
                0 => format!("{}", rng.range_i64(1..7)),
                1 => "rank() + 1".to_string(),
                _ => format!("{} + rank() % 3", rng.range_i64(1..4)),
            };
            indent(out, ind);
            writeln!(out, "for {var} in 0..{hi} {{").unwrap();
            let mut vars2: Vec<&str> = vars.to_vec();
            vars2.push(&var);
            gen_block(rng, out, &vars2, helpers, depth - 1, ind + 1);
            indent(out, ind);
            writeln!(out, "}}").unwrap();
        }
        6 | 7 if depth > 0 => {
            indent(out, ind);
            writeln!(out, "if {} {{", gen_cond(rng, vars)).unwrap();
            gen_block(rng, out, vars, helpers, depth - 1, ind + 1);
            indent(out, ind);
            if rng.chance(0.5) {
                writeln!(out, "}} else {{").unwrap();
                gen_block(rng, out, vars, helpers, depth - 1, ind + 1);
                indent(out, ind);
            }
            writeln!(out, "}}").unwrap();
        }
        8 if !helpers.is_empty() => {
            indent(out, ind);
            let h = &helpers[rng.range_usize(0..helpers.len())];
            writeln!(out, "{h}({});", gen_int_expr(rng, vars)).unwrap();
        }
        _ => {
            indent(out, ind);
            writeln!(out, "compute({});", rng.range_i64(1..5000)).unwrap();
        }
    }
}

fn check_seed(seed: u64) {
    let src = gen_program(seed);
    let prog = parse(&src).unwrap_or_else(|e| panic!("seed {seed}: parse error {e}\n{src}"));
    check_program(&prog).unwrap_or_else(|e| panic!("seed {seed}: check error {e}\n{src}"));

    // Pretty-printer round trip: print(parse(src)) re-parses to the same AST.
    let printed = cypress::minilang::print_program(&prog);
    let reparsed = parse(&printed).unwrap_or_else(|e| {
        panic!("seed {seed}: printed source does not re-parse: {e}\n{printed}")
    });
    assert!(
        cypress::minilang::structurally_equal(&prog, &reparsed),
        "seed {seed}: pretty-print round trip diverged"
    );

    // Invariant 1: CFG-based CST equals the AST oracle.
    let a = analyze_program_with(&prog, IntraBuilder::Ast);
    let b = analyze_program_with(&prog, IntraBuilder::Cfg);
    assert_eq!(
        a.cst.to_compact_string(),
        b.cst.to_compact_string(),
        "seed {seed}: CST builders disagree\n{src}"
    );
    assert!(b.cst.is_preorder());

    // The CST text serialization round-trips for arbitrary program trees.
    let text = b.cst.to_text();
    let parsed = cypress::cst::Cst::from_text(&text)
        .unwrap_or_else(|e| panic!("seed {seed}: CST text parse failed: {e}"));
    assert_eq!(parsed, b.cst, "seed {seed}: CST text round trip");

    // Invariant 2: per-rank sequence preservation through compression.
    // Alternate between even and odd world sizes so relative-rank and
    // modulo peer encodings are exercised off the power-of-two happy path.
    let nprocs = 4 + (seed % 2) as u32;
    let traces = trace_program(&prog, &b, nprocs, &InterpConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed}: trace error {e}\n{src}"));
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&b.cst, t, &cfg))
        .collect();
    for (t, ctt) in traces.iter().zip(&ctts) {
        let replay = decompress(&b.cst, ctt);
        let want: Vec<_> = t
            .mpi_records()
            .map(|r| (r.gid, r.op, r.params.clone()))
            .collect();
        let got: Vec<_> = replay
            .iter()
            .map(|o| (o.gid, o.op, o.params.clone()))
            .collect();
        assert_eq!(got, want, "seed {seed}: rank {} diverged\n{src}", t.rank);
    }

    // Invariant 3: compressed-domain queries equal decompress-then-analyze.
    // The generator emits wildcard receives (`irecv(any_source(), ..)`), so
    // this also covers the symbolic treatment of MPI_ANY_SOURCE.
    let q = query_ctts(&b.cst, &ctts, &QueryOptions::default())
        .unwrap_or_else(|e| panic!("seed {seed}: query error {e}\n{src}"));
    let r = query_by_decompression(&b.cst, &ctts)
        .unwrap_or_else(|e| panic!("seed {seed}: reference query error {e}\n{src}"));
    assert_eq!(
        q.matrix, r.matrix,
        "seed {seed}: comm matrix diverged\n{src}"
    );
    assert_eq!(q.profile, r.profile, "seed {seed}: profile diverged\n{src}");
    assert_eq!(
        q.totals, r.totals,
        "seed {seed}: rank totals diverged\n{src}"
    );
    assert_eq!(
        q.hotspots, r.hotspots,
        "seed {seed}: hot spots diverged\n{src}"
    );
    assert_eq!(
        q.loop_trips, r.loop_trips,
        "seed {seed}: loop trips diverged\n{src}"
    );
    assert_eq!(
        q.hotspot_volume(),
        q.total_volume(),
        "seed {seed}: hot-spot bytes do not sum to matrix volume\n{src}"
    );

    // Invariant 4: compressed-domain analysis equals the oracle. Random
    // programs may put collectives behind rank-dependent branches — that
    // traces fine but cannot be replayed (a real run would deadlock), so
    // the invariant for those seeds is that every path diagnoses them.
    let model = LogGp::default();
    let native = analyze_ctts(&b.cst, &ctts, &model, &AnalyzeOptions::default());
    let oracle = analyze_by_decompression(&b.cst, &ctts, &model, &AnalyzeOptions::default());
    let raw = simulate_traced(&from_raw_traces(&traces), &model);
    match (native, oracle) {
        (Ok(native), Ok(oracle)) => {
            assert_eq!(
                native.predicted, oracle.predicted,
                "seed {seed}: prediction diverged from oracle\n{src}"
            );
            assert_eq!(
                native.waits, oracle.waits,
                "seed {seed}: late-sender waits diverged from oracle\n{src}"
            );
            // The raw-trace simulator sees exact per-instance gaps where the
            // CTT replays each merged record's mean; the predicted totals
            // agree within the averaging error (measured max 0.07% across
            // both seed streams — most seeds are exactly equal).
            let (raw, _) = raw.unwrap_or_else(|e| {
                panic!("seed {seed}: raw trace failed but compressed replay ran: {e}\n{src}")
            });
            let drift =
                (native.predicted.total as f64 - raw.total as f64).abs() / raw.total.max(1) as f64;
            assert!(
                drift <= 0.005,
                "seed {seed}: CTT prediction {} vs raw-trace simulate {} ({:.3}% off)\n{src}",
                native.predicted.total,
                raw.total,
                drift * 100.0,
            );
            // A full-span window takes the windowed replay path (clock
            // reconstruction + wait pruning) and must change nothing.
            let span = AnalyzeOptions {
                window: Some(Window {
                    start_ns: 0,
                    end_ns: u64::MAX,
                }),
            };
            let windowed = analyze_ctts(&b.cst, &ctts, &model, &span)
                .unwrap_or_else(|e| panic!("seed {seed}: full-span window failed: {e}\n{src}"));
            assert_eq!(
                windowed.predicted, native.predicted,
                "seed {seed}: full-span window changed the prediction\n{src}"
            );
            assert_eq!(
                windowed.waits, native.waits,
                "seed {seed}: full-span window changed the wait report\n{src}"
            );
        }
        (Err(_), Err(_)) => {
            assert!(
                raw.is_err(),
                "seed {seed}: raw trace simulates but compressed analysis failed\n{src}"
            );
        }
        (a, b) => panic!(
            "seed {seed}: native and oracle disagree on replay validity: {a:?} vs {b:?}\n{src}"
        ),
    }
}

/// Analyze one source at a world size; assert the partial-expansion
/// (recursion) fallback fired and the CTT-native report equals the
/// decompress-then-analyze oracle exactly. Returns the native report plus
/// the raw-trace simulation for callers that can compare against it.
fn analyze_recursive(
    src: &str,
    nprocs: u32,
) -> (cypress::analysis::AnalyzeReport, cypress::simmpi::SimResult) {
    let prog = parse(src).unwrap();
    check_program(&prog).unwrap();
    let b = analyze_program_with(&prog, IntraBuilder::Cfg);
    let traces = trace_program(&prog, &b, nprocs, &InterpConfig::default()).unwrap();
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&b.cst, t, &cfg))
        .collect();
    let model = LogGp::default();
    let native = analyze_ctts(&b.cst, &ctts, &model, &AnalyzeOptions::default()).unwrap();
    let oracle =
        analyze_by_decompression(&b.cst, &ctts, &model, &AnalyzeOptions::default()).unwrap();
    assert!(
        native.stats.flattened,
        "nprocs={nprocs}: recursion should force the flatten fallback"
    );
    assert_eq!(native.predicted, oracle.predicted, "nprocs={nprocs}");
    assert_eq!(native.waits, oracle.waits, "nprocs={nprocs}");
    let (raw, _) = simulate_traced(&from_raw_traces(&traces), &model).unwrap();
    (native, raw)
}

/// The forced partial-expansion path: recursion cannot lower to a schedule,
/// so the analysis flattens the whole job — and must still match the
/// decompress-then-analyze oracle exactly at even and odd world sizes.
/// Tail recursion replays in exact trace order, so there the prediction
/// also tracks the raw-trace simulator within the averaging tolerance.
#[test]
fn recursive_programs_flatten_and_match_oracle() {
    for nprocs in [4u32, 5] {
        // Tail recursion: the pseudo-loop replay *is* the traced order.
        let tail = r#"
            fn walk(n) {
                if n > 0 {
                    compute(900);
                    send((rank() + 1) % size(), 512, 0);
                    recv((rank() + size() - 1) % size(), 512, 0);
                    walk(n - 1);
                }
            }
            fn main() {
                walk(6);
                allreduce(32);
            }
        "#;
        let (native, raw) = analyze_recursive(tail, nprocs);
        let drift =
            (native.predicted.total as f64 - raw.total as f64).abs() / raw.total.max(1) as f64;
        assert!(
            drift <= 0.005,
            "nprocs={nprocs}: tail-recursive prediction {} vs raw-trace simulate {}",
            native.predicted.total,
            raw.total
        );

        // Non-tail recursion: the pseudo-loop linearizes the unwind (the
        // documented approximate case, DESIGN.md §"Partial-expansion
        // fallback"), so raw-trace order is not reproduced — the pinned
        // invariant is exact equality with the decompression oracle, which
        // `analyze_recursive` asserted above.
        let pingpong = r#"
            fn pingpong(n) {
                if n > 0 {
                    compute(900);
                    send((rank() + 1) % size(), 512, 0);
                    pingpong(n - 1);
                    recv((rank() + size() - 1) % size(), 512, 0);
                }
            }
            fn main() {
                for it in 0..4 {
                    pingpong(3);
                    allreduce(32);
                }
            }
        "#;
        let (native, _raw) = analyze_recursive(pingpong, nprocs);
        assert!(native.predicted.total > 0);
    }
}

#[test]
fn random_programs_round_trip() {
    // 80 wide-range seeds derived from one master stream (the replacement
    // for the proptest `any::<u64>()` sweep; fully deterministic).
    let mut master = Rng::new(0x9e3779b97f4a7c15);
    for _ in 0..80 {
        check_seed(master.next_u64());
    }
}

#[test]
fn specific_seeds_round_trip() {
    // Fixed small seeds keep a deterministic floor of coverage independent
    // of the master-stream constants above.
    for seed in 0..64u64 {
        check_seed(seed);
    }
}
