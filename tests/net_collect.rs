//! Loopback networked collection must be indistinguishable from the local
//! pipeline: N clients submitting out of order produce a merged CTT
//! **byte-identical** to `merge_all` over locally-compressed ranks, a
//! client killed mid-stream and retried must not corrupt the job, and
//! every bundled workload collected over the wire must decompress and
//! query exactly like its local run.

use cypress::core::{merge_all, Ctt};
use cypress::cst::analyze_program;
use cypress::minilang::{check_program, parse};
use cypress::net::proto::{read_frame, write_frame};
use cypress::net::{
    submit_stream, Addr, ClientConfig, CollectedJob, Collector, CollectorConfig, Frame, Stream,
    SubmitMode, PROTO_VERSION,
};
use cypress::runtime::{run_rank_with_sink, InterpConfig};
use cypress::trace::event::Event;
use cypress::trace::Codec;
use cypress::workloads::{by_name, quick_procs, Scale, NPB_NAMES};
use cypress::{read_container, write_collected_container, Pipeline};
use std::time::Duration;

const STENCIL: &str = r#"fn main() {
    for it in 0..40 {
        let up = isend((rank() + 1) % size(), 512, 1);
        let dn = irecv((rank() + size() - 1) % size(), 512, 1);
        waitall(up, dn);
        if it % 10 == 0 { allreduce(8); }
    }
    barrier();
}"#;

fn client_cfg() -> ClientConfig {
    ClientConfig {
        attempts: 5,
        backoff: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
        io_timeout: Duration::from_secs(10),
        chunk_events: 64,
        ..ClientConfig::default()
    }
}

/// Run a collector on an ephemeral TCP port and submit every rank of
/// `source` from its own thread, in the given order with a small stagger
/// so arrival order actually follows `order`.
fn collect_loopback(source: &str, nprocs: u32, order: &[u32]) -> CollectedJob {
    let prog = parse(source).unwrap();
    check_program(&prog).unwrap();
    let info = analyze_program(&prog);
    let cst_text = info.cst.to_text();

    let collector = Collector::bind(&Addr::parse("127.0.0.1:0").unwrap()).unwrap();
    let addr = collector.local_addr().unwrap();
    let cfg = CollectorConfig {
        deadline: Some(Duration::from_secs(60)),
        ..CollectorConfig::default()
    };
    let server = std::thread::spawn(move || collector.run(&cfg).unwrap());

    std::thread::scope(|s| {
        for (i, &rank) in order.iter().enumerate() {
            let (addr, cst_text, prog, info) = (&addr, &cst_text, &prog, &info);
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10 * i as u64));
                submit_stream(addr, &client_cfg(), rank, nprocs, cst_text, |sink| {
                    run_rank_with_sink(prog, info, rank, nprocs, &InterpConfig::default(), {
                        #[allow(clippy::needless_borrow)]
                        &mut &mut *sink
                    })
                    .map_err(|e| e.to_string())
                })
                .unwrap();
            });
        }
    });
    server.join().unwrap()
}

fn local_ctts(source: &str, nprocs: u32) -> Vec<Ctt> {
    Pipeline::new(source).ranks(nprocs).run().unwrap().ctts
}

#[test]
fn out_of_order_submission_is_byte_identical_to_local_merge() {
    let nprocs = 8u32;
    // A deliberately scrambled arrival order (no sorted prefix anywhere).
    let order = [5u32, 2, 7, 0, 6, 1, 4, 3];
    let job = collect_loopback(STENCIL, nprocs, &order);

    let ctts = local_ctts(STENCIL, nprocs);
    let local = merge_all(&ctts);
    assert_eq!(
        job.merged.to_bytes(),
        local.to_bytes(),
        "networked merge must be byte-identical to local merge_all"
    );
    assert_eq!(job.rank_ctts.len(), nprocs as usize);
    for (got, want) in job.rank_ctts.iter().zip(&ctts) {
        assert_eq!(got, want, "rank {} CTT differs", want.rank);
    }
    assert_eq!(
        job.total_events,
        ctts.iter().map(|c| c.op_count()).sum::<u64>()
    );
}

#[test]
fn killed_mid_stream_client_retry_leaves_job_uncorrupted() {
    let nprocs = 4u32;
    let prog = parse(STENCIL).unwrap();
    check_program(&prog).unwrap();
    let info = analyze_program(&prog);
    let cst_text = info.cst.to_text();

    let collector = Collector::bind(&Addr::parse("127.0.0.1:0").unwrap()).unwrap();
    let addr = collector.local_addr().unwrap();
    let cfg = CollectorConfig {
        deadline: Some(Duration::from_secs(60)),
        ..CollectorConfig::default()
    };
    let server = std::thread::spawn(move || collector.run(&cfg).unwrap());

    // Rank 2's first attempt dies mid-stream: real Hello, real events, no
    // Finish — the socket just drops, as if the process was killed. The
    // collector must discard the partial session.
    let mut events: Vec<Event> = Vec::new();
    run_rank_with_sink(
        &prog,
        &info,
        2,
        nprocs,
        &InterpConfig::default(),
        &mut events,
    )
    .unwrap();
    assert!(events.len() > 32, "need a non-trivial partial stream");
    {
        let mut s = Stream::connect(&addr, Duration::from_secs(5)).unwrap();
        write_frame(
            &mut s,
            &Frame::Hello {
                version: PROTO_VERSION,
                rank: 2,
                nprocs,
                mode: SubmitMode::Stream,
                cst_text: cst_text.clone(),
            },
        )
        .unwrap();
        match read_frame(&mut s).unwrap() {
            Frame::HelloAck { already_done, .. } => assert!(!already_done),
            f => panic!("expected HelloAck, got {}", f.name()),
        }
        write_frame(
            &mut s,
            &Frame::Events {
                events: events[..32].to_vec(),
            },
        )
        .unwrap();
        // Drop without Finish: the "kill".
    }

    // Now every rank submits properly, rank 2 last (its retry).
    std::thread::scope(|s| {
        for (i, rank) in [0u32, 1, 3, 2].into_iter().enumerate() {
            let (addr, cst_text, prog, info) = (&addr, &cst_text, &prog, &info);
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(15 * i as u64));
                let out = submit_stream(addr, &client_cfg(), rank, nprocs, cst_text, |sink| {
                    run_rank_with_sink(prog, info, rank, nprocs, &InterpConfig::default(), {
                        &mut &mut *sink
                    })
                    .map_err(|e| e.to_string())
                })
                .unwrap();
                assert!(!out.already_done, "rank {rank} was not previously merged");
            });
        }
    });

    let job = server.join().unwrap();
    let local = merge_all(&local_ctts(STENCIL, nprocs));
    assert_eq!(
        job.merged.to_bytes(),
        local.to_bytes(),
        "a killed-and-retried client must not corrupt the merged job"
    );
}

#[test]
fn every_bundled_workload_collects_identically() {
    let dir = std::env::temp_dir().join(format!("cypress-netwl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    for name in NPB_NAMES {
        let w = by_name(name, quick_procs(name), Scale::Quick).unwrap();
        let order: Vec<u32> = (0..w.nprocs).rev().collect();
        let job = collect_loopback(&w.source, w.nprocs, &order);

        let mut local = Pipeline::new(w.source.clone())
            .ranks(w.nprocs)
            .run()
            .unwrap();
        assert_eq!(
            job.merged.to_bytes(),
            local.merge().to_bytes(),
            "{name}: merged CTT bytes differ between network and local paths"
        );

        // Container round trip: a collected job must query and decompress
        // exactly like the local pipeline.
        let path = dir.join(format!("{name}.cytc"));
        write_collected_container(&job, &path, true).unwrap();
        let loaded = read_container(&path).unwrap();
        assert_eq!(
            loaded.query().unwrap(),
            local.query().unwrap(),
            "{name}: query results differ"
        );
        for rank in 0..w.nprocs {
            assert_eq!(
                loaded.decompress(rank).unwrap(),
                local.decompress(rank).unwrap(),
                "{name}: rank {rank} replay differs"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
