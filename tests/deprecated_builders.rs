//! The deprecated per-knob builder methods must keep compiling and keep
//! behaving exactly like the [`PipelineConfig`] they forward to, until the
//! next breaking release removes them. `scripts/check.sh` builds this file
//! in a deprecated-exempt pass, so a forward that stops compiling fails CI
//! even though the rest of the workspace builds with `-D deprecated`.
#![allow(deprecated)]

use cypress::core::{CompressConfig, SessionConfig};
use cypress::deflate::Level;
use cypress::runtime::InterpConfig;
use cypress::trace::codec::Codec;
use cypress::{Ingest, Pipeline, PipelineConfig};

const SRC: &str = "fn main() { for i in 0..32 { allreduce(16); } barrier(); }";

/// Every deprecated forward lands on the same `PipelineConfig` field that
/// `configure` would set.
#[test]
fn deprecated_forwards_set_the_config_they_document() {
    let compress = CompressConfig::default();
    let interp = InterpConfig {
        max_steps: 12_345,
        ..InterpConfig::default()
    };
    let session = SessionConfig {
        checkpoint_every: 777,
        ..SessionConfig::default()
    };

    let p = Pipeline::new(SRC)
        .ranks(4)
        .config(compress.clone())
        .interp_config(interp.clone())
        .session_config(session.clone())
        .threads(3)
        .streaming(true)
        .level(Some(Level::Best));

    let want = PipelineConfig {
        compress,
        interp,
        session,
        threads: 3,
        mode: Ingest::Sequential,
        level: Some(Level::Best),
    };
    assert_eq!(*p.config_ref(), want);

    // `streaming(false)` maps to the batch mode, and `threads` clamps to 1.
    let p = Pipeline::new(SRC).streaming(false).threads(0);
    assert_eq!(p.config_ref().mode, Ingest::Batch);
    assert_eq!(p.config_ref().threads, 1);
}

/// A run driven entirely through the deprecated methods produces the same
/// bytes as the same run driven through `configure`.
#[test]
fn deprecated_builder_run_matches_configure_run() {
    let old = Pipeline::new(SRC)
        .ranks(6)
        .threads(2)
        .streaming(true)
        .run()
        .unwrap();
    let new = Pipeline::new(SRC)
        .ranks(6)
        .configure(PipelineConfig {
            threads: 2,
            ..PipelineConfig::default()
        })
        .run()
        .unwrap();
    assert_eq!(old.ctts.len(), new.ctts.len());
    for (a, b) in old.ctts.iter().zip(&new.ctts) {
        assert_eq!(a.to_bytes(), b.to_bytes(), "rank {}", a.rank);
    }
}
