//! The two hard cases of §III-B / §IV-A in one demo: recursion converted to
//! a pseudo loop (paper Fig. 8) and wildcard receives with deferred
//! compression.
//!
//! Run with: `cargo run --example recursion_and_wildcards`

use cypress::core::{compress_trace, decompress, CompressConfig, VertexData};
use cypress::cst::analyze_program;
use cypress::minilang::{check_program, parse};
use cypress::runtime::{trace_program, InterpConfig};
use cypress::trace::event::MpiOp;

const SRC: &str = r#"
    // A recursive halo walker (cf. paper Fig. 8) plus a master that drains
    // results with wildcard receives.
    fn walk(depth) {
        if depth > 0 {
            bcast(0, 256);
            walk(depth - 1);
        }
    }
    fn main() {
        walk(8);
        if rank() == 0 {
            for i in 0..size() - 1 {
                let r = irecv(any_source(), 64, 7);
                wait(r);
            }
        } else {
            send(0, 64, 7);
        }
    }
"#;

fn main() {
    let prog = parse(SRC).expect("parse");
    check_program(&prog).expect("check");
    let info = analyze_program(&prog);

    // Static side: the recursion shows up as a pseudo loop.
    println!("CST: {}", info.cst.to_compact_string());
    assert!(
        info.cst.to_compact_string().contains("PseudoLoop"),
        "recursion must be converted to a pseudo loop"
    );

    let nprocs = 6;
    let traces = trace_program(&prog, &info, nprocs, &InterpConfig::default()).expect("trace");

    // Rank 0: 8 bcasts + 5 wildcard irecv/wait pairs.
    let t0 = &traces[0];
    println!(
        "\nrank 0 traced {} MPI events ({} wildcard receives)",
        t0.mpi_count(),
        t0.mpi_records()
            .filter(|r| r.params.src == cypress::trace::event::ANY_SOURCE)
            .count()
    );

    let ctt = compress_trace(&info.cst, t0, &CompressConfig::default());
    // The pseudo loop recorded 9 iterations (8 recursive + the base case).
    let pseudo_counts = ctt
        .data
        .iter()
        .find_map(|d| match d {
            VertexData::Loop { counts } if !counts.is_empty() => Some(counts.to_vec()),
            _ => None,
        })
        .expect("pseudo loop data");
    println!("pseudo-loop iteration counts: {pseudo_counts:?}");
    assert_eq!(pseudo_counts, vec![9]);

    // Tail recursion ⇒ the replay is exactly the original sequence.
    let replay = decompress(&info.cst, &ctt);
    assert_eq!(replay.len(), t0.mpi_count());
    assert_eq!(
        replay.iter().filter(|o| o.op == MpiOp::Bcast).count(),
        8,
        "all eight recursive bcasts survive"
    );
    let original: Vec<_> = t0.mpi_records().map(|r| (r.gid, r.op)).collect();
    let replayed: Vec<_> = replay.iter().map(|o| (o.gid, o.op)).collect();
    assert_eq!(original, replayed);
    println!("\ntail-recursive sequence replayed exactly ✓");

    // The wildcard receives were cached until their wait() completed and
    // still merged into a single record (all parameters identical).
    let wild_records = ctt
        .data
        .iter()
        .filter_map(|d| match d {
            VertexData::Leaf { records } => records
                .iter()
                .find(|r| r.params.op == MpiOp::Irecv)
                .map(|r| r.count),
            _ => None,
        })
        .next()
        .expect("wildcard irecv record");
    println!("wildcard irecv record: ×{wild_records} (merged after deferred compression) ✓");
    assert_eq!(wild_records, (nprocs - 1) as u64);
}
