//! Quickstart: the whole CYPRESS pipeline on the paper's Jacobi example
//! (Fig. 3) — static analysis, instrumented tracing, on-the-fly
//! compression, inter-process merging, and sequence-preserving
//! decompression.
//!
//! Run with: `cargo run --example quickstart`

use cypress::core::{compress_trace, decompress, merge_all, CompressConfig};
use cypress::cst::analyze_program;
use cypress::minilang::{check_program, parse};
use cypress::runtime::{trace_program, InterpConfig};
use cypress::trace::codec::Codec;
use cypress::trace::raw::raw_mpi_size;

const JACOBI: &str = r#"
    // Simplified MPI program for Jacobi iteration (paper Fig. 3).
    fn main() {
        let r = rank();
        let s = size();
        for k in 0..100 {
            if r < s - 1 { send(r + 1, 8192, 0); }
            if r > 0 { recv(r - 1, 8192, 0); }
            if r > 0 { send(r - 1, 8192, 1); }
            if r < s - 1 { recv(r + 1, 8192, 1); }
            compute(50000);
        }
    }
"#;

fn main() {
    // 1. Static analysis: build the whole-program Communication Structure
    //    Tree (CFG → dominators → loops → Algorithm 1 → Algorithm 2).
    let prog = parse(JACOBI).expect("parse");
    check_program(&prog).expect("type check");
    let info = analyze_program(&prog);
    println!("CST: {}", info.cst.to_compact_string());
    println!(
        "     {} vertices, {} MPI leaves, {} instrumentation entries\n",
        info.cst.len(),
        info.cst.mpi_leaf_count(),
        info.sitemap.entry_count()
    );

    // 2. Trace 16 SPMD ranks through the instrumented interpreter.
    let nprocs = 16;
    let traces = trace_program(&prog, &info, nprocs, &InterpConfig::default()).expect("trace");
    let total_events: usize = traces.iter().map(|t| t.mpi_count()).sum();
    let raw_bytes: usize = traces.iter().map(raw_mpi_size).sum();
    println!("traced {nprocs} ranks: {total_events} MPI events, {raw_bytes} raw bytes");

    // 3. Intra-process compression: fill each rank's CTT top-down.
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    println!(
        "per-rank compressed records: {:?}",
        ctts.iter().map(|c| c.record_count()).collect::<Vec<_>>()
    );

    // 4. Inter-process merge: O(n) per pair thanks to the shared tree shape.
    let merged = merge_all(&ctts);
    println!(
        "merged CTT: {} rank groups, {} bytes (vs {} raw — {:.0}x)",
        merged.group_count(),
        merged.encoded_size(),
        raw_bytes,
        raw_bytes as f64 / merged.encoded_size() as f64
    );

    // 5. Decompression preserves the exact per-rank sequence.
    for (rank, (t, ctt)) in traces.iter().zip(&ctts).enumerate() {
        let replay = decompress(&info.cst, ctt);
        let original: Vec<_> = t
            .mpi_records()
            .map(|r| (r.gid, r.op, r.params.clone()))
            .collect();
        let replayed: Vec<_> = replay
            .iter()
            .map(|o| (o.gid, o.op, o.params.clone()))
            .collect();
        assert_eq!(original, replayed, "rank {rank} sequence mismatch");
    }
    println!("\nsequence preservation verified for all {nprocs} ranks ✓");
}
