//! Quickstart: the whole CYPRESS pipeline on the paper's Jacobi example
//! (Fig. 3) through the `Pipeline` facade — static analysis, streaming
//! compression on a work-stealing pool, inter-process merging, container
//! persistence, and sequence-preserving decompression.
//!
//! Run with: `cargo run --example quickstart`

use cypress::trace::codec::Codec;
use cypress::Pipeline;

const JACOBI: &str = r#"
    // Simplified MPI program for Jacobi iteration (paper Fig. 3).
    fn main() {
        let r = rank();
        let s = size();
        for k in 0..100 {
            if r < s - 1 { send(r + 1, 8192, 0); }
            if r > 0 { recv(r - 1, 8192, 0); }
            if r > 0 { send(r - 1, 8192, 1); }
            if r < s - 1 { recv(r + 1, 8192, 1); }
            compute(50000);
        }
    }
"#;

fn main() {
    // 1. One builder runs the whole pipeline: parse → CST construction
    //    (CFG → dominators → loops → Algorithm 1 → Algorithm 2) → 16 SPMD
    //    ranks interpreted on a work-stealing pool, each feeding a streaming
    //    compression session — the raw trace never materializes.
    let nprocs = 16;
    let mut job = Pipeline::new(JACOBI)
        .ranks(nprocs)
        .run()
        .expect("pipeline run");

    println!("CST: {}", job.info.cst.to_compact_string());
    println!(
        "     {} vertices, {} MPI leaves, {} instrumentation entries\n",
        job.info.cst.len(),
        job.info.cst.mpi_leaf_count(),
        job.info.sitemap.entry_count()
    );

    // 2. Streaming sessions report what a PMPI tracer would: event counts
    //    and the (flat) peak resident CTT footprint per rank.
    let events: u64 = job.stats.iter().map(|s| s.events).sum();
    println!(
        "streamed {events} events across {nprocs} ranks; peak resident CTT {} B/rank",
        job.peak_ctt_bytes()
    );
    println!(
        "per-rank compressed records: {:?}",
        job.ctts
            .iter()
            .map(|c| c.record_count())
            .collect::<Vec<_>>()
    );

    // 3. Inter-process merge: O(n) per pair thanks to the shared tree shape.
    let merged_bytes = job.merge().encoded_size();
    println!(
        "merged CTT: {} rank groups, {merged_bytes} bytes",
        job.merge().group_count()
    );

    // 4. Persist as a versioned, CRC-checked container and reload it — no
    //    re-simulation needed on the read side.
    let path = std::env::temp_dir().join("cypress-quickstart.cytc");
    job.write_container(&path, false).expect("write container");
    let loaded = cypress::read_container(&path).expect("read container");

    // 5. Decompression (from the reloaded file!) preserves each rank's
    //    exact sequence.
    for rank in 0..nprocs {
        let from_disk = loaded.decompress(rank).expect("decompress loaded");
        let in_memory = job.decompress(rank).expect("decompress job");
        assert_eq!(
            from_disk.len(),
            in_memory.len(),
            "rank {rank} sequence mismatch"
        );
        for (a, b) in from_disk.iter().zip(&in_memory) {
            assert_eq!((a.gid, a.op), (b.gid, b.op), "rank {rank} op mismatch");
        }
    }
    let _ = std::fs::remove_file(&path);
    println!("\ncontainer round trip + sequence preservation verified for all {nprocs} ranks ✓");
}
