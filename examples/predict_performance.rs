//! Trace-driven performance prediction (§V, Fig. 14 & Fig. 21): decompress
//! CYPRESS traces and feed them into the LogGP simulator, comparing against
//! a "measured" simulation of the raw traces.
//!
//! Run with: `cargo run --release --example predict_performance`

use cypress::core::{compress_trace, decompress, CompressConfig};
use cypress::simmpi::{from_raw_traces, simulate, LogGp, SimOp};
use cypress::workloads::{leslie3d::leslie3d, Scale};

fn main() {
    println!("LESlie3d: measured vs CYPRESS-trace-predicted execution time\n");
    println!(
        "{:>7} {:>13} {:>13} {:>8} {:>8}",
        "procs", "measured(ms)", "predicted(ms)", "error", "comm%"
    );

    let model = LogGp::default();
    for nprocs in [16u32, 32, 64] {
        let w = leslie3d(nprocs, Scale::Quick);
        let (_, info) = w.compile();
        let traces = w.trace_parallel(8).expect("trace");

        // "Measured": replay the raw traces (exact per-op compute gaps).
        let measured = simulate(&from_raw_traces(&traces), &model).expect("measured sim");

        // "Predicted": compress, decompress, replay — compute gaps now come
        // from the compressed per-record statistics.
        let cfg = CompressConfig::default();
        let predicted_ops: Vec<Vec<SimOp>> = traces
            .iter()
            .map(|t| {
                let ctt = compress_trace(&info.cst, t, &cfg);
                decompress(&info.cst, &ctt)
                    .into_iter()
                    .map(|o| SimOp {
                        gid: o.gid,
                        op: o.op,
                        params: o.params,
                        pre_gap: o.mean_gap,
                    })
                    .collect()
            })
            .collect();
        let predicted = simulate(&predicted_ops, &model).expect("predicted sim");

        let err =
            (predicted.total as f64 - measured.total as f64).abs() / measured.total as f64 * 100.0;
        println!(
            "{:>7} {:>13.3} {:>13.3} {:>7.2}% {:>7.2}%",
            nprocs,
            measured.total as f64 / 1e6,
            predicted.total as f64 / 1e6,
            err,
            measured.comm_fraction() * 100.0
        );
        assert!(err < 15.0, "prediction drifted too far");
    }
    println!("\n(the paper reports 5.9% average prediction error on its cluster)");
}
