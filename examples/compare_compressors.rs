//! Side-by-side comparison of all the trace compressors on one workload —
//! a one-workload slice of Fig. 15 plus losslessness checks.
//!
//! Run with: `cargo run --release --example compare_compressors [workload] [nprocs]`
//! (defaults: `lu 16`; try `sp 16` for CYPRESS's hard case).

use cypress::baselines::{
    Scala2Config, Scala2Merged, Scala2Trace, ScalaConfig, ScalaMerged, ScalaTrace,
};
use cypress::core::{compress_trace, decompress, merge_all, CompressConfig};
use cypress::deflate::{gzip_compress, Level};
use cypress::trace::codec::Codec;
use cypress::trace::raw::encode_mpi_events;
use cypress::workloads::{by_name, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("lu");
    let nprocs: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);

    let w =
        by_name(name, nprocs, Scale::Quick).unwrap_or_else(|| panic!("unknown workload {name}"));
    let (_, info) = w.compile();
    let traces = w.trace_parallel(8).expect("trace");
    let events: usize = traces.iter().map(|t| t.mpi_count()).sum();
    println!("workload {name} @ {nprocs} ranks: {events} MPI events\n");

    // Raw + per-rank gzip (no inter-process compression).
    let blobs: Vec<Vec<u8>> = traces.iter().map(encode_mpi_events).collect();
    let raw: usize = blobs.iter().map(Vec::len).sum();
    let gz: usize = blobs
        .iter()
        .map(|b| gzip_compress(b, Level::Default).len())
        .sum();

    // ScalaTrace: lossless RSD folding + O(n²) alignment merge.
    let st: Vec<ScalaTrace> = traces
        .iter()
        .map(|t| ScalaTrace::compress(t, &ScalaConfig::default()))
        .collect();
    for (t, s) in traces.iter().zip(&st) {
        assert_eq!(
            s.expand().len(),
            t.mpi_count(),
            "ScalaTrace must be lossless"
        );
    }
    let st_size = ScalaMerged::merge_all(&st).encoded_size();

    // ScalaTrace-2: elastic (partially lossy) folding.
    let st2: Vec<Scala2Trace> = traces
        .iter()
        .map(|t| Scala2Trace::compress(t, &Scala2Config::default()))
        .collect();
    let st2_size = Scala2Merged::merge_all(&st2).encoded_size();

    // CYPRESS: static CST + top-down CTT compression.
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    for (t, ctt) in traces.iter().zip(&ctts) {
        let replay = decompress(&info.cst, ctt);
        assert_eq!(replay.len(), t.mpi_count(), "CYPRESS must be lossless");
    }
    let merged = merge_all(&ctts);
    let cy_size = info.cst.to_text().len() + merged.encoded_size();
    let cy_gz = gzip_compress(&merged.to_bytes(), Level::Default).len()
        + gzip_compress(info.cst.to_text().as_bytes(), Level::Default).len();

    let row = |label: &str, bytes: usize, lossless: &str| {
        println!(
            "{label:<22} {:>12} B  {:>9.1}x  {lossless}",
            bytes,
            raw as f64 / bytes.max(1) as f64
        );
    };
    println!(
        "{:<22} {:>14} {:>10}  sequence fidelity",
        "method", "size", "ratio"
    );
    row("raw", raw, "exact");
    row("gzip (per rank)", gz, "exact");
    row("ScalaTrace", st_size, "exact");
    row("ScalaTrace-2", st2_size, "partial (elastic)");
    row("CYPRESS", cy_size, "exact");
    row("CYPRESS + gzip", cy_gz, "exact");
}
