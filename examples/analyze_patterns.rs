//! Communication-pattern analysis from *compressed* traces — the paper's
//! LESlie3d case study (§VII-D-1, Fig. 20).
//!
//! The merged CTT is decompressed per rank and the communication-volume
//! matrix is rebuilt from the replayed operations, demonstrating that the
//! compressed artifact retains everything pattern analysis needs (locality,
//! message-size classes) without the raw trace.
//!
//! Run with: `cargo run --example analyze_patterns`

use cypress::core::{compress_trace, decompress, merge_all, CompressConfig};
use cypress::trace::commmatrix::CommMatrix;
use cypress::trace::raw::RawTrace;
use cypress::workloads::{leslie3d::leslie3d, Scale};

fn main() {
    let nprocs = 32;
    let w = leslie3d(nprocs, Scale::Quick);
    let (_, info) = w.compile();
    let traces = w.trace_parallel(8).expect("trace leslie3d");

    // Compress everything and *discard the raw traces*.
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    let merged = merge_all(&ctts);
    drop(traces);

    // Rebuild per-rank event streams from the merged artifact alone.
    let replayed: Vec<RawTrace> = (0..nprocs)
        .map(|rank| {
            let ctt = merged.extract_rank(rank, &info.cst);
            let ops = decompress(&info.cst, &ctt);
            let mut t = RawTrace::new(rank, nprocs);
            t.events = ops
                .into_iter()
                .map(|o| {
                    cypress::trace::event::Event::Mpi(cypress::trace::event::MpiRecord {
                        gid: o.gid,
                        op: o.op,
                        params: o.params,
                        t_start: 0,
                        dur: o.mean_dur,
                    })
                })
                .collect();
            t
        })
        .collect();

    let m = CommMatrix::from_traces(&replayed);
    println!("LESlie3d @ {nprocs} ranks — pattern recovered from compressed traces\n");
    println!("communication heatmap (row = sender):");
    print!("{}", m.to_ascii());

    println!("\ncommunication locality:");
    for rank in [0u32, 5, 13] {
        println!("  rank {rank:>2} talks to {:?}", m.peers_of(rank as usize));
    }

    let volumes = m.distinct_volumes();
    println!("\nper-edge volumes ({} distinct):", volumes.len());
    // Each edge carries (steps × size) bytes; divide by the step count to
    // recover the two per-message size classes the paper reports.
    let steps = Scale::Quick.steps(150) as u64;
    for v in &volumes {
        println!("  {} B total = {} B/message", v, v / steps);
    }
    assert!(
        volumes.iter().any(|v| v / steps == 43 * 1024)
            && volumes.iter().any(|v| v / steps == 83 * 1024),
        "expected the paper's 43 KB / 83 KB size classes"
    );
    println!("\nfound the paper's two message-size classes (43 KB, 83 KB) ✓");
}
